//! Kill-and-recover soak: the standing-violation service runs over a
//! durable write-ahead log while a deterministic [`FaultPlan`] crashes
//! it at seed-chosen commits and damages the log file the way real
//! crashes do — un-fsynced tail lost wholesale, a frame torn
//! mid-payload or mid-header, a bit flipped by media rot. After every
//! crash the service recovers from the damaged file and must land on
//! an epoch whose graph **and violation set** are identical to an
//! independently maintained shadow — and then keep ingesting.
//!
//! The crash *decisions* are pure seed arithmetic
//! ([`FaultPlan::crashes`] keyed by a monotone commit tick, so
//! re-reaching an epoch after rollback cannot re-crash forever); the
//! *damage* is performed here, on the file, byte by byte. Recovery must
//! absorb all of it: zero panics on hostile bytes, every truncated
//! frame and replayed epoch visible in the [`RecoveryReport`].
//!
//! Under `BENCH_SMOKE` the run shrinks to ~20 target epochs for CI.

use std::collections::HashSet;
use std::path::Path;
use std::sync::Arc;

use gfd_core::validate::detect_violations;
use gfd_core::{Dependency, Gfd, GfdSet, Literal, Violation};
use gfd_graph::{Graph, GraphBuilder, GraphDelta, NodeId, Value, Vocab};
use gfd_match::Match;
use gfd_parallel::wal::{frame_bounds, HEADER_LEN};
use gfd_parallel::{CrashKind, FaultPlan, ServiceConfig, SyncPolicy, ViolationService};
use gfd_pattern::PatternBuilder;
use gfd_util::{Rng, TempDir};

fn social(n: usize) -> Graph {
    let mut g = GraphBuilder::with_fresh_vocab();
    let blogs: Vec<_> = (0..n)
        .map(|i| {
            let b = g.add_node_labeled("blog");
            g.set_attr_named(
                b,
                "keyword",
                Value::str(if i % 3 == 0 { "spam" } else { "ok" }),
            );
            b
        })
        .collect();
    for i in 0..n {
        let a = g.add_node_labeled("account");
        g.set_attr_named(a, "is_fake", Value::Bool(i % 4 == 0));
        g.add_edge_labeled(a, blogs[i], "post");
        g.add_edge_labeled(a, blogs[(i + 1) % n], "like");
    }
    g.freeze()
}

fn rules(vocab: Arc<Vocab>) -> GfdSet {
    let keyword = vocab.intern("keyword");
    let is_fake = vocab.intern("is_fake");

    let mut b = PatternBuilder::new(vocab.clone());
    let x = b.node("x", "account");
    let y = b.node("y", "blog");
    b.edge(x, y, "post");
    let spam = Gfd::new(
        "spam-poster-is-fake",
        b.build(),
        Dependency::new(
            vec![Literal::const_eq(y, keyword, "spam")],
            vec![Literal::const_eq(x, is_fake, true)],
        ),
    );

    let mut b = PatternBuilder::new(vocab);
    let x = b.node("x", "account");
    let y = b.node("y", "blog");
    b.edge(x, y, "like");
    let liker = Gfd::new(
        "spam-liker-is-real",
        b.build(),
        Dependency::new(
            vec![Literal::const_eq(y, keyword, "spam")],
            vec![Literal::const_eq(x, is_fake, false)],
        ),
    );
    GfdSet::new(vec![spam, liker])
}

/// One batch of chained edit deltas over a small slot pool, evolving
/// the shadow alongside the service (same shape as the main soak).
fn random_batch(rng: &mut Rng, g: &Graph, len: usize) -> (Graph, Vec<GraphDelta>) {
    let mut cur = g.edit(|_| {});
    let mut deltas = Vec::with_capacity(len);
    for _ in 0..len {
        let n = cur.node_count();
        let s = NodeId(rng.gen_range(0..n) as u32);
        let d = NodeId(rng.gen_range(0..n) as u32);
        let kind = rng.gen_range(0..6);
        let spam = rng.gen_bool(0.5);
        let fake = rng.gen_bool(0.5);
        let (next, delta) = cur.edit_with_delta(|b| match kind {
            0 => {
                b.add_edge_labeled(s, d, "post");
            }
            1 => {
                b.remove_edge_labeled(s, d, "post");
            }
            2 => {
                b.add_edge_labeled(s, d, "like");
            }
            3 => {
                b.remove_edge_labeled(s, d, "like");
            }
            4 => {
                let a = b.vocab().intern("keyword");
                b.set_attr(s, a, Value::str(if spam { "spam" } else { "ok" }));
            }
            _ => {
                let a = b.vocab().intern("is_fake");
                b.set_attr(s, a, Value::Bool(fake));
            }
        });
        cur = next;
        deltas.push(delta);
    }
    (cur, deltas)
}

fn graphs_equal(a: &Graph, b: &Graph) -> bool {
    a.node_count() == b.node_count()
        && a.edge_count() == b.edge_count()
        && a.nodes().all(|u| {
            a.label(u) == b.label(u)
                && a.attrs(u) == b.attrs(u)
                && a.out_slice(u) == b.out_slice(u)
                && a.in_slice(u) == b.in_slice(u)
        })
}

fn vio_set(vs: Vec<Violation>) -> HashSet<(usize, Match)> {
    vs.into_iter().map(|v| (v.rule, v.mapping)).collect()
}

/// Damages the log at `path` the way `kind` says a crash would, with
/// positions drawn from the plan at `tick`. `synced_len` is the prefix
/// the last fsync made durable; `base_len` the end of the snapshot
/// frame (damage is aimed past the recovery floor — a destroyed floor
/// is the hard-error case, tested separately in the wal unit tests).
fn mangle(
    path: &Path,
    kind: CrashKind,
    plan: &FaultPlan,
    tick: u64,
    synced_len: u64,
    base_len: u64,
) {
    let bytes = std::fs::read(path).unwrap();
    let cut = plan.crash_cut_point(tick);
    match kind {
        CrashKind::KillBeforeFsync => {
            // The page cache dies with the process: only the fsynced
            // prefix survives.
            std::fs::write(path, &bytes[..synced_len as usize]).unwrap();
        }
        CrashKind::TornTail => {
            // The final frame made it partially to disk: header
            // readable, payload/checksum cut short.
            let last = *frame_bounds(path).unwrap().last().unwrap();
            let body = last.len - HEADER_LEN as u64 - 1;
            let at = last.offset + HEADER_LEN as u64 + (cut * body as f64) as u64;
            std::fs::write(path, &bytes[..at as usize]).unwrap();
        }
        CrashKind::ShortRead => {
            // Cut inside the final frame's header — shorter than any
            // parseable record.
            let last = *frame_bounds(path).unwrap().last().unwrap();
            let at = last.offset + 1 + (cut * (HEADER_LEN as f64 - 2.0)) as u64;
            std::fs::write(path, &bytes[..at as usize]).unwrap();
        }
        CrashKind::BitFlip => {
            // Media rot: one bit somewhere past the snapshot frame.
            let mut bytes = bytes;
            let span = bytes.len() as u64 - base_len;
            let at = (base_len + (cut * span as f64) as u64) as usize;
            bytes[at] ^= 1u8 << plan.crash_flip_bit(tick);
            std::fs::write(path, &bytes).unwrap();
        }
    }
}

#[test]
fn kill_and_recover_soak_lands_on_oracle_identical_epochs() {
    let target_epochs: u64 = if std::env::var_os("BENCH_SMOKE").is_some() {
        20
    } else {
        60
    };

    // The plan only decides *crashes* here; the service itself runs
    // fault-free so every divergence the oracle catches is recovery's.
    let plan = FaultPlan {
        seed: 0xDEAD_BEEF,
        crash_p: 0.25,
        ..FaultPlan::default()
    };
    let cfg = ServiceConfig {
        threads: 2,
        oracle_sample_p: 0.0,
        seed: 11,
        faults: None,
    };

    let dir = TempDir::new("gfd-crash-soak").unwrap();
    let path = dir.file("edits.wal");

    let g0 = Arc::new(social(12));
    let sigma = rules(g0.vocab().clone());
    let mut svc = ViolationService::with_durable_log(
        sigma.clone(),
        Arc::clone(&g0),
        cfg.clone(),
        &path,
        SyncPolicy::EveryN(4),
    )
    .unwrap();

    // shadows[e] = the oracle's graph after epoch e; rolled back in
    // lockstep with every recovery.
    let mut shadows: Vec<Graph> = vec![g0.edit(|_| {})];
    let mut rng = Rng::seed_from_u64(2024);
    let mut tick = 0u64; // monotone across crashes — epochs are not
    let mut crashes = 0u64;
    let mut kinds_seen = HashSet::new();
    let mut total_replayed = 0u64;
    let mut total_truncated_frames = 0u64;

    while svc.stats().epochs < target_epochs {
        let len = 1 + rng.gen_range(0..5);
        let shadow = shadows.last().unwrap();
        let (next, batch) = random_batch(&mut rng, shadow, len);
        let epoch = svc.ingest(&batch).expect("batches are well-formed");
        shadows.push(next);
        assert_eq!(epoch + 1, shadows.len() as u64, "shadow/service desync");
        tick += 1;

        let Some(kind) = plan.crashes(tick) else {
            continue;
        };
        crashes += 1;
        kinds_seen.insert(kind);

        // Kill: remember what was durable, drop the service (the
        // writer deliberately does not fsync on drop), damage the file.
        let w = svc.durable_log().expect("service is durable");
        let (synced_len, synced_epoch, base_len) =
            (w.synced_bytes(), w.synced_epoch(), w.base_bytes());
        drop(svc);
        mangle(&path, kind, &plan, tick, synced_len, base_len);

        // Predict where recovery must land: the intact frames of the
        // damaged file, independently of the recovery code under test.
        let intact = frame_bounds(&path).unwrap();
        let expect_epoch = (intact.len() - 1) as u64;
        let intact_end = intact.last().map(|f| f.offset + f.len).unwrap();
        let damaged_len = std::fs::metadata(&path).unwrap().len();

        let (recovered, report) =
            ViolationService::recover(sigma.clone(), &path, cfg.clone(), SyncPolicy::EveryN(4))
                .unwrap();
        svc = recovered;

        assert_eq!(
            report.recovered_epoch, expect_epoch,
            "tick {tick} ({kind:?}): recovery landed on the wrong epoch"
        );
        assert_eq!(report.replayed_epochs, expect_epoch);
        if kind == CrashKind::KillBeforeFsync {
            // Losing the un-fsynced tail is clean truncation at a frame
            // boundary: nothing to report as corruption, and the floor
            // is exactly the last fsync.
            assert_eq!(report.recovered_epoch, synced_epoch);
            assert!(report.corruption.is_none(), "tick {tick}: phantom fault");
            assert_eq!(report.truncated_bytes, 0);
        } else {
            // Torn or flipped bytes: the fault and the cut are visible.
            assert!(
                report.corruption.is_some(),
                "tick {tick} ({kind:?}): absorbed fault not reported"
            );
            assert!(report.truncated_frames >= 1);
            assert_eq!(report.truncated_bytes, damaged_len - intact_end);
        }
        total_replayed += report.replayed_epochs;
        total_truncated_frames += report.truncated_frames;

        // The oracle: recovered graph and violation set must equal the
        // shadow at the recovered epoch — then the timeline rewinds.
        shadows.truncate(expect_epoch as usize + 1);
        let shadow = shadows.last().unwrap();
        assert!(
            graphs_equal(svc.snapshot().graph.as_ref(), shadow),
            "tick {tick} ({kind:?}): recovered graph diverges from the shadow"
        );
        assert_eq!(
            vio_set(svc.violations()),
            vio_set(detect_violations(&sigma, shadow)),
            "tick {tick} ({kind:?}): recovered violations diverge from scratch"
        );
        assert_eq!(svc.stats().epochs, expect_epoch);
    }

    assert!(crashes > 0, "seed never crashed the service; retune");
    assert!(
        kinds_seen.len() >= 3,
        "only {kinds_seen:?} crash kinds fired; retune the seed"
    );
    assert!(total_replayed > 0, "no crash ever had epochs to replay");
    assert!(
        total_truncated_frames > 0,
        "no crash ever cost a frame; the damage model is too gentle"
    );

    // Clean shutdown: force the tail down, recover once more, and the
    // whole run must come back byte-for-byte.
    svc.flush_log().unwrap();
    let head = svc.stats().epochs;
    drop(svc);
    let (svc, report) =
        ViolationService::recover(sigma.clone(), &path, cfg, SyncPolicy::EveryEpoch).unwrap();
    assert_eq!(report.recovered_epoch, head);
    assert!(report.corruption.is_none());
    let shadow = shadows.last().unwrap();
    assert!(graphs_equal(svc.snapshot().graph.as_ref(), shadow));
    assert_eq!(
        vio_set(svc.violations()),
        vio_set(detect_violations(&sigma, shadow))
    );
}
