//! Concurrent serving-tier stress: one shared [`ClassRegistry`]
//! serving two [`ViolationService`] tenants (racing each other on
//! every `advance`) plus the panic-isolated threaded executor (N
//! workers racing on every table probe), over an edit stream replayed
//! from a fixed seed, so a failure here reproduces exactly.
//!
//! Oracles:
//! - Every epoch, both tenants and the threaded executor agree, and
//!   after the stream drains the shared set is identical to a
//!   from-scratch `detect_violations` over the independently
//!   maintained shadow graph.
//! - The `simulations()` probe never exceeds the class count at any
//!   epoch boundary: each isomorphism class runs its worklist fixpoint
//!   exactly once for the whole run — transported to co-members,
//!   repaired (never re-simulated) across epochs, and never duplicated
//!   by a racing tenant (the version-cursor `advance` makes the first
//!   arrival apply the repair and the laggard replay recorded flags).

use std::collections::HashSet;
use std::sync::Arc;
use std::thread;

use gfd_core::validate::detect_violations;
use gfd_core::{Dependency, Gfd, GfdSet, Literal, Violation};
use gfd_graph::{Graph, GraphBuilder, GraphDelta, NodeId, Value, Vocab};
use gfd_match::Match;
use gfd_parallel::workload::plan_rules;
use gfd_parallel::{
    estimate_workload_in, run_units_threaded_report, ClassRegistry, ServiceConfig,
    ViolationService, WorkloadOptions,
};
use gfd_pattern::PatternBuilder;
use gfd_util::Rng;

fn social(n: usize) -> Graph {
    let mut g = GraphBuilder::with_fresh_vocab();
    let blogs: Vec<_> = (0..n)
        .map(|i| {
            let b = g.add_node_labeled("blog");
            g.set_attr_named(
                b,
                "keyword",
                Value::str(if i % 3 == 0 { "spam" } else { "ok" }),
            );
            b
        })
        .collect();
    for i in 0..n {
        let a = g.add_node_labeled("account");
        g.set_attr_named(a, "is_fake", Value::Bool(i % 4 == 0));
        g.add_edge_labeled(a, blogs[i], "post");
        g.add_edge_labeled(a, blogs[(i + 1) % n], "like");
    }
    g.freeze()
}

/// Three rules in two isomorphism classes, chosen so the registry's
/// sharing machinery is all load-bearing: the two-component symmetric
/// rule's halves and the spam rule's pattern are isomorphic (one
/// class, three members, two of them a symmetric pair sharing match
/// tables), the liker rule is the second class.
fn rules(vocab: Arc<Vocab>) -> GfdSet {
    let keyword = vocab.intern("keyword");
    let is_fake = vocab.intern("is_fake");

    let mut b = PatternBuilder::new(vocab.clone());
    let x = b.node("x", "account");
    let y = b.node("y", "blog");
    b.edge(x, y, "post");
    let spam = Gfd::new(
        "spam-poster-is-fake",
        b.build(),
        Dependency::new(
            vec![Literal::const_eq(y, keyword, "spam")],
            vec![Literal::const_eq(x, is_fake, true)],
        ),
    );

    let mut b = PatternBuilder::new(vocab.clone());
    let x = b.node("x", "account");
    let y = b.node("y", "blog");
    b.edge(x, y, "like");
    let liker = Gfd::new(
        "spam-liker-is-real",
        b.build(),
        Dependency::new(
            vec![Literal::const_eq(y, keyword, "spam")],
            vec![Literal::const_eq(x, is_fake, false)],
        ),
    );

    let mut b = PatternBuilder::new(vocab);
    let x = b.node("x", "account");
    let y = b.node("y", "blog");
    b.edge(x, y, "post");
    let x2 = b.node("x2", "account");
    let y2 = b.node("y2", "blog");
    b.edge(x2, y2, "post");
    let twins = Gfd::new(
        "same-keyword-same-standing",
        b.build(),
        Dependency::new(
            vec![Literal::var_eq(y, keyword, y2, keyword)],
            vec![Literal::var_eq(x, is_fake, x2, is_fake)],
        ),
    );
    GfdSet::new(vec![spam, liker, twins])
}

/// One batch of chained edit deltas on the shadow (the soak's edit
/// model): a small slot pool of rule-relevant edge and attribute
/// flips.
fn random_batch(rng: &mut Rng, g: &Graph, len: usize) -> (Graph, Vec<GraphDelta>) {
    let mut cur = g.edit(|_| {});
    let mut deltas = Vec::with_capacity(len);
    for _ in 0..len {
        let n = cur.node_count();
        let s = NodeId(rng.gen_range(0..n) as u32);
        let d = NodeId(rng.gen_range(0..n) as u32);
        let kind = rng.gen_range(0..6);
        let spam = rng.gen_bool(0.5);
        let fake = rng.gen_bool(0.5);
        let (next, delta) = cur.edit_with_delta(|b| match kind {
            0 => {
                b.add_edge_labeled(s, d, "post");
            }
            1 => {
                b.remove_edge_labeled(s, d, "post");
            }
            2 => {
                b.add_edge_labeled(s, d, "like");
            }
            3 => {
                b.remove_edge_labeled(s, d, "like");
            }
            4 => {
                let a = b.vocab().intern("keyword");
                b.set_attr(s, a, Value::str(if spam { "spam" } else { "ok" }));
            }
            _ => {
                let a = b.vocab().intern("is_fake");
                b.set_attr(s, a, Value::Bool(fake));
            }
        });
        cur = next;
        deltas.push(delta);
    }
    (cur, deltas)
}

fn vio_set(vs: Vec<Violation>) -> HashSet<(usize, Match)> {
    vs.into_iter().map(|v| (v.rule, v.mapping)).collect()
}

#[test]
fn shared_registry_serves_racing_tenants_and_executor() {
    let epochs: usize = if std::env::var_os("BENCH_SMOKE").is_some() {
        12
    } else {
        40
    };
    let g0 = Arc::new(social(12));
    let sigma = rules(g0.vocab().clone());
    let plans = plan_rules(&sigma);
    let registry = Arc::new(ClassRegistry::new());
    let cfg = |seed| ServiceConfig {
        threads: 2,
        oracle_sample_p: 0.0,
        seed,
        faults: None,
    };
    let mut svc_a = ViolationService::with_registry(
        sigma.clone(),
        Arc::clone(&g0),
        cfg(1),
        Arc::clone(&registry),
    );
    let mut svc_b = ViolationService::with_registry(
        sigma.clone(),
        Arc::clone(&g0),
        cfg(2),
        Arc::clone(&registry),
    );
    // Three classes: the shared account→blog "post" star (spam rule +
    // both halves of the symmetric rule), the "like" star, and the
    // symmetric rule's full two-component pattern.
    assert_eq!(registry.class_count(), 3);
    assert_eq!(
        registry.simulations(),
        registry.class_count(),
        "seeding both tenants must simulate each class exactly once \
         (the second tenant's spaces are transported, not recomputed)"
    );

    let mut rng = Rng::seed_from_u64(0x5EED);
    let mut shadow = g0.edit(|_| {});
    let mut exec_hits = 0u64;
    for _ in 0..epochs {
        let len = 1 + rng.gen_range(0..6);
        let (next, batch) = random_batch(&mut rng, &shadow, len);
        shadow = next;

        // Both tenants race the same epoch: whichever thread reaches
        // `advance` first applies the per-class repair, the laggard
        // replays the recorded flags.
        let (ea, eb) = {
            let (ra, rb) = (&mut svc_a, &mut svc_b);
            let (batch_a, batch_b) = (&batch, &batch);
            thread::scope(|s| {
                let ha = s.spawn(move || ra.ingest(batch_a).expect("recorded batches are valid"));
                let hb = s.spawn(move || rb.ingest(batch_b).expect("recorded batches are valid"));
                (ha.join().unwrap(), hb.join().unwrap())
            })
        };
        assert_eq!(ea, eb, "tenants ingest the same stream in lockstep");
        assert_eq!(
            vio_set(svc_a.violations()),
            vio_set(svc_b.violations()),
            "racing tenants diverged at epoch {ea}"
        );

        // The threaded executor probes the same registry at the same
        // version: N workers over overlapping classes, sharing tables
        // cross-worker.
        let head = svc_a.snapshot().graph;
        let wl = estimate_workload_in(&sigma, &head, &WorkloadOptions::default(), &registry);
        let report = run_units_threaded_report(
            &head, &sigma, &plans, &wl.units, &wl.slots, &registry, 3, None, ea,
        );
        assert!(report.quarantined.is_empty(), "no faults were injected");
        exec_hits += report.cache.hits;
        assert_eq!(
            vio_set(report.violations),
            vio_set(svc_a.violations()),
            "threaded executor diverged from the tenants at epoch {ea}"
        );

        // The probe: repairs are incremental and transported — no
        // class ever runs its simulation fixpoint a second time, no
        // matter how many tenants or workers raced this epoch (the
        // executor's per-epoch registrations all land in existing
        // classes, so the count never grows either).
        assert_eq!(
            registry.simulations(),
            registry.class_count(),
            "a class was re-simulated at epoch {ea}"
        );
        assert_eq!(registry.class_count(), 3);
    }

    assert!(
        exec_hits > 0,
        "the symmetric pair must produce cross-worker table hits"
    );

    // Final oracle: the shared set is exactly from-scratch detection
    // over the independently maintained shadow.
    let scratch = vio_set(detect_violations(&sigma, &shadow));
    assert_eq!(
        vio_set(svc_a.violations()),
        scratch,
        "tenant A diverged from scratch detection after {epochs} epochs"
    );
    assert_eq!(
        vio_set(svc_b.violations()),
        scratch,
        "tenant B diverged from scratch detection after {epochs} epochs"
    );
}
