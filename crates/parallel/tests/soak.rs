//! Fault-injection soak: a 10k-edit stream through the standing-
//! violation service with every failure family firing — transient and
//! sticky worker panics, stragglers, repair panics, silent detector
//! drift, and malformed batches — driven by one deterministic
//! [`FaultPlan`] seed, so a failure here replays exactly.
//!
//! The oracle is total: after the stream drains, the service's
//! violation set must be identical to a from-scratch
//! `detect_violations` over the independently maintained shadow graph,
//! the subscriber's folded diff stream must reproduce that same set
//! with strictly consecutive epochs (no torn epoch, ever), pinned
//! epochs must replay forward to the exact head snapshot, and every
//! injected fault family must be visible in the service stats —
//! absorbed and counted, never silently dropped.
//!
//! Under `BENCH_SMOKE` the stream shrinks to ~1.5k edits for CI.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use gfd_core::validate::detect_violations;
use gfd_core::{Dependency, Gfd, GfdSet, Literal, Violation};
use gfd_graph::{AttrOp, Graph, GraphBuilder, GraphDelta, NodeId, Value, Vocab};
use gfd_match::Match;
use gfd_parallel::fault::silence_injected_panics;
use gfd_parallel::{ClassRegistry, FaultPlan, ServiceConfig, ViolationService};
use gfd_pattern::PatternBuilder;
use gfd_util::Rng;

fn social(n: usize) -> Graph {
    let mut g = GraphBuilder::with_fresh_vocab();
    let blogs: Vec<_> = (0..n)
        .map(|i| {
            let b = g.add_node_labeled("blog");
            g.set_attr_named(
                b,
                "keyword",
                Value::str(if i % 3 == 0 { "spam" } else { "ok" }),
            );
            b
        })
        .collect();
    for i in 0..n {
        let a = g.add_node_labeled("account");
        g.set_attr_named(a, "is_fake", Value::Bool(i % 4 == 0));
        g.add_edge_labeled(a, blogs[i], "post");
        g.add_edge_labeled(a, blogs[(i + 1) % n], "like");
    }
    g.freeze()
}

fn rules(vocab: Arc<Vocab>) -> GfdSet {
    let keyword = vocab.intern("keyword");
    let is_fake = vocab.intern("is_fake");

    let mut b = PatternBuilder::new(vocab.clone());
    let x = b.node("x", "account");
    let y = b.node("y", "blog");
    b.edge(x, y, "post");
    let spam = Gfd::new(
        "spam-poster-is-fake",
        b.build(),
        Dependency::new(
            vec![Literal::const_eq(y, keyword, "spam")],
            vec![Literal::const_eq(x, is_fake, true)],
        ),
    );

    let mut b = PatternBuilder::new(vocab);
    let x = b.node("x", "account");
    let y = b.node("y", "blog");
    b.edge(x, y, "like");
    let liker = Gfd::new(
        "spam-liker-is-real",
        b.build(),
        Dependency::new(
            vec![Literal::const_eq(y, keyword, "spam")],
            vec![Literal::const_eq(x, is_fake, false)],
        ),
    );
    GfdSet::new(vec![spam, liker])
}

/// One batch of chained edit deltas on the shadow, over a small slot
/// pool so batches carry opposing ops for compaction to cancel.
fn random_batch(rng: &mut Rng, g: &Graph, len: usize) -> (Graph, Vec<GraphDelta>) {
    let mut cur = g.edit(|_| {});
    let mut deltas = Vec::with_capacity(len);
    for _ in 0..len {
        let n = cur.node_count();
        let s = NodeId(rng.gen_range(0..n) as u32);
        let d = NodeId(rng.gen_range(0..n) as u32);
        let kind = rng.gen_range(0..6);
        let spam = rng.gen_bool(0.5);
        let fake = rng.gen_bool(0.5);
        let (next, delta) = cur.edit_with_delta(|b| match kind {
            0 => {
                b.add_edge_labeled(s, d, "post");
            }
            1 => {
                b.remove_edge_labeled(s, d, "post");
            }
            2 => {
                b.add_edge_labeled(s, d, "like");
            }
            3 => {
                b.remove_edge_labeled(s, d, "like");
            }
            4 => {
                let a = b.vocab().intern("keyword");
                b.set_attr(s, a, Value::str(if spam { "spam" } else { "ok" }));
            }
            _ => {
                let a = b.vocab().intern("is_fake");
                b.set_attr(s, a, Value::Bool(fake));
            }
        });
        cur = next;
        deltas.push(delta);
    }
    (cur, deltas)
}

fn graphs_equal(a: &Graph, b: &Graph) -> bool {
    a.node_count() == b.node_count()
        && a.edge_count() == b.edge_count()
        && a.nodes().all(|u| {
            a.label(u) == b.label(u)
                && a.attrs(u) == b.attrs(u)
                && a.out_slice(u) == b.out_slice(u)
                && a.in_slice(u) == b.in_slice(u)
        })
}

fn vio_set(vs: Vec<Violation>) -> HashSet<(usize, Match)> {
    vs.into_iter().map(|v| (v.rule, v.mapping)).collect()
}

#[test]
fn soak_10k_edit_stream_survives_every_fault_family() {
    silence_injected_panics();
    let edit_budget: usize = if std::env::var_os("BENCH_SMOKE").is_some() {
        1_500
    } else {
        10_000
    };

    let plan = FaultPlan {
        seed: 0xF00D,
        unit_panic_p: 0.30,
        sticky_p: 0.30,
        straggle_p: 0.05,
        straggle: Duration::from_micros(200),
        repair_panic_p: 0.02,
        drift_p: 0.01,
        malformed_batch_p: 0.01,
        crash_p: 0.0,
    };
    let cfg = ServiceConfig {
        threads: 3,
        oracle_sample_p: 0.02,
        seed: 7,
        faults: Some(plan.clone()),
    };

    let g0 = Arc::new(social(16));
    let sigma = rules(g0.vocab().clone());
    // The service runs over an explicitly budgeted serving tier so the
    // soak also exercises the registry's memory contract: bounded
    // bytes at every epoch, and deferred (pin-protected) evictions
    // that fully drain once no worker holds a table.
    let budget: usize = 256 << 10;
    let registry = Arc::new(ClassRegistry::with_budget_bytes(budget));
    let mut svc =
        ViolationService::with_registry(sigma.clone(), Arc::clone(&g0), cfg, Arc::clone(&registry));
    let rx = svc.subscribe();
    let pin0 = svc.snapshot();
    let baseline = vio_set(svc.violations());

    let mut rng = Rng::seed_from_u64(99);
    let mut shadow = g0.edit(|_| {});
    let mut edits = 0usize;
    let mut rejected = 0u64;
    let mut mid_pin = None;
    while edits < edit_budget {
        let len = 1 + rng.gen_range(0..8);
        let (next, batch) = random_batch(&mut rng, &shadow, len);
        let next_epoch = svc.snapshot().epoch + 1;
        if plan.corrupts_batch(next_epoch) {
            // The driver-side malformed-batch injection: a copy of the
            // batch with a far out-of-range node id spliced into a
            // random delta. The service must reject it wholesale and
            // then accept the genuine batch at the same epoch.
            let mut bad = batch.clone();
            let idx = rng.gen_range(0..bad.len());
            bad[idx].attr_ops.push(AttrOp {
                node: NodeId(shadow.node_count() as u32 + 10_000),
                attr: gfd_graph::Sym(0),
                value: Some(Value::Int(1)),
            });
            assert!(
                svc.ingest(&bad).is_err(),
                "service accepted a corrupted batch at epoch {next_epoch}"
            );
            rejected += 1;
        }
        let epoch = svc
            .ingest(&batch)
            .expect("recorded batches are well-formed");
        assert_eq!(epoch, next_epoch, "rejection must not consume an epoch");
        shadow = next;
        edits += len;
        if mid_pin.is_none() && epoch >= 10 {
            mid_pin = Some(svc.snapshot());
        }
        // The memory contract holds at every epoch boundary: no worker
        // is mid-unit here, so nothing is pinned and the byte budget —
        // which accounts spaces, tables, *and* factorizations — is
        // strict.
        assert!(
            registry.bytes() <= budget,
            "epoch {epoch}: registry at {} bytes exceeds its {budget}-byte budget",
            registry.bytes()
        );
    }

    // Both rules carry constant-only consequents, so the service's
    // initial pass must have gone through the factorized marginal
    // screen — the budget assertions above covered factorization bytes,
    // not just spaces and tables.
    assert!(
        registry.factorizations_built() > 0,
        "const-Y rules must exercise the factorized fast path"
    );

    // Satellite invariant: with every pin dropped, a sweep drains all
    // deferred evictions — nothing stays resident on a stale refcount.
    registry.sweep();
    assert_eq!(
        registry.deferred_pending(),
        0,
        "deferred evictions must drain to zero once pins drop"
    );
    assert!(registry.bytes() <= budget);

    // Oracle 1: the maintained set is identical to from-scratch
    // detection over the independently evolved shadow graph.
    let scratch = vio_set(detect_violations(&sigma, &shadow));
    assert_eq!(
        vio_set(svc.violations()),
        scratch,
        "service diverged from scratch detection after {edits} edits"
    );

    // Oracle 2: pinned epochs replay forward to the exact head.
    for pin in [&pin0, mid_pin.as_ref().expect("stream ran past epoch 10")] {
        let replayed = svc.log().replay_onto(pin);
        assert!(
            graphs_equal(&replayed, &shadow),
            "replay from pinned epoch {} diverges from the head",
            pin.epoch
        );
    }

    // Every fault family fired and was absorbed — visible in stats,
    // with quarantined work recovered (oracle 1 already proves no
    // quarantined unit's violations were lost).
    let stats = svc.stats().clone();
    assert_eq!(stats.edits_ingested as usize, edits);
    assert_eq!(stats.batches_rejected, rejected);
    assert!(
        rejected > 0,
        "seed never corrupted a batch; retune the plan"
    );
    assert!(stats.repair_panics > 0, "seed never panicked a repair");
    assert!(
        stats.divergences_detected > 0,
        "seed never drifted the detector"
    );
    assert!(
        stats.degraded_epochs >= stats.repair_panics + stats.divergences_detected,
        "every caught fault must degrade its epoch"
    );
    assert!(stats.unit_panics > 0, "seed never panicked a worker");
    assert!(
        stats.units_quarantined > 0,
        "seed never produced a sticky worker fault"
    );

    // Oracle 3: the subscriber stream has no torn epochs and folds to
    // the same absolute set.
    drop(svc);
    let mut folded = baseline;
    let mut expected_epoch = 1;
    for update in rx.iter() {
        assert_eq!(update.epoch, expected_epoch, "torn or skipped epoch");
        expected_epoch += 1;
        for v in &update.retracted {
            assert!(
                folded.remove(&(v.rule, v.mapping.clone())),
                "epoch {}: retraction of an unheld violation",
                update.epoch
            );
        }
        for v in &update.added {
            assert!(
                folded.insert((v.rule, v.mapping.clone())),
                "epoch {}: re-add of a held violation",
                update.epoch
            );
        }
    }
    assert_eq!(expected_epoch - 1, stats.epochs, "missing updates");
    assert_eq!(folded, scratch, "folded stream diverges from scratch");
}
