//! The workload model of §5.2: pivot vectors, work units, `W(Σ, G)`.
//!
//! For each GFD `ϕ` with pivot vector `PV(ϕ) = ((z_1, c¹_Q), …,
//! (z_k, c^k_Q))`, a *work unit* is `w = ⟨v̄_z, G_z̄⟩`: a pivot
//! candidate per connected component together with the candidates'
//! `c^i_Q`-hop data blocks. By the locality of subgraph isomorphism,
//! validating `ϕ` reduces to enumerating matches inside the data
//! blocks of its work units (each pivot tuple checked exactly once).
//!
//! Following Example 10, symmetric pivot tuples of *isomorphic*
//! components are deduplicated (the unit then checks both pivot
//! orientations internally), and units whose pivots cannot locally
//! match their component are pruned during estimation.

use std::sync::Arc;

use gfd_core::GfdSet;
use gfd_graph::{neighborhood, Graph, NodeId, NodeSet};
use gfd_match::simulation::{dual_simulation, CandidateSpace};
use gfd_match::ClassRegistry;
use gfd_pattern::{
    analysis::pivot_vector, isomorphic, tree_decomposition, PatLabel, Pattern, VarId,
};
use gfd_util::FxHashMap;

/// Per-rule pivot metadata, precomputed once from `Σ`.
#[derive(Clone, Debug)]
pub struct PivotedRule {
    /// Index of the rule in `Σ`.
    pub rule: usize,
    /// Component patterns (renumbered) with their original variables.
    pub components: Vec<ComponentPlan>,
    /// True if the rule has exactly two components and they are
    /// isomorphic (Example 10's dedup applies).
    pub symmetric_pair: bool,
}

/// One connected component of a rule's pattern, ready for matching.
#[derive(Clone, Debug)]
pub struct ComponentPlan {
    /// The component as a standalone pattern.
    pub pattern: Pattern,
    /// Original pattern variable of each component variable.
    pub orig_vars: Vec<VarId>,
    /// The pivot, as a component-local variable.
    pub local_pivot: VarId,
    /// The pivot's label constraint.
    pub pivot_label: PatLabel,
    /// The component radius `c^i_Q`.
    pub radius: usize,
    /// Width of the component's tree decomposition (0 for a single
    /// node, 1 for trees, ≥ 2 for cyclic components) — the planner's
    /// difficulty signal, folded into unit costs: enumerating a block
    /// gets more expensive per node as the component's width grows.
    pub width: usize,
}

/// One component's share of a work unit: the pivot candidate and its
/// data block.
#[derive(Clone, Debug)]
pub struct UnitSlot {
    /// The pivot candidate `v_z` of this component.
    pub pivot: NodeId,
    /// Its `c^i_Q`-hop data block, shared with the [`BlockCache`] —
    /// cloning a slot never deep-copies a block.
    pub block: Arc<NodeSet>,
}

/// A work unit `w = ⟨v̄_z, G_z̄⟩`, as a `(rule, offset, len, flags)`
/// descriptor over the [`Workload`]'s flat slot arena.
///
/// Units used to own a per-unit slot `Vec` — one heap allocation per
/// unit, materialized by the thousand during estimation. Now all slots
/// of a workload live in one arena (`Workload::slots`) and a unit is a
/// 24-byte `Copy` record pointing into it: estimation appends to two
/// flat vectors, splitting/cloning units is a register copy, and the
/// whole workload is two contiguous buffers (mmap-able modulo the
/// `Arc` blocks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkUnit {
    /// Index of the rule in `Σ`.
    pub rule: u32,
    /// First slot in the owning arena.
    pub slot_offset: u32,
    /// Number of slots (= components `k`), in component order.
    pub slot_len: u32,
    /// Check both pivot orientations (symmetric-pair dedup).
    pub check_both_orientations: bool,
    /// The unit's load estimate: the sum of block sizes `|G_z̄|`
    /// (Example 11), with each block weighted by its component's
    /// decomposition width — a width-`w` component enumerates more
    /// per block node than a tree, so its blocks count `max(w, 1)`
    /// times.
    pub cost: u64,
}

impl WorkUnit {
    /// Number of components `k` of the unit's rule.
    pub fn k(&self) -> usize {
        self.slot_len as usize
    }

    /// The rule index as a `usize` (for indexing `Σ` / plans).
    #[inline]
    pub fn rule(&self) -> usize {
        self.rule as usize
    }

    /// The unit's slots, resolved against the owning arena.
    #[inline]
    pub fn slots<'a>(&self, arena: &'a [UnitSlot]) -> &'a [UnitSlot] {
        &arena[self.slot_offset as usize..self.slot_offset as usize + self.slot_len as usize]
    }

    /// The pivot vector `v̄_z` in component order.
    pub fn pivots<'a>(&self, arena: &'a [UnitSlot]) -> impl Iterator<Item = NodeId> + 'a {
        self.slots(arena).iter().map(|s| s.pivot)
    }
}

/// Knobs for workload estimation.
#[derive(Clone, Debug)]
pub struct WorkloadOptions {
    /// Hard cap on generated units (safety valve; `None` = unlimited).
    pub max_units: Option<usize>,
    /// Prune pivot candidates outside the component's dual-simulation
    /// relation (one worklist simulation per component instead of a
    /// backtracking probe per candidate).
    pub prune_empty_pivots: bool,
    /// Estimate unit costs from the class's cached factorization
    /// instead of the `|block| × width` proxy: a pivot's cost becomes
    /// its **marginal** — the number of represented assignments
    /// anchored at it — and zero-marginal pivots (provably matchless,
    /// by the superset argument) are pruned outright. Requires
    /// `prune_empty_pivots` (the factorization lives on the class's
    /// candidate space); components the factorizer declines keep the
    /// proxy. Off by default: the proxy is the paper's `t(·)` estimate
    /// and the baseline the partitioning tests pin.
    pub factorized_costs: bool,
}

impl Default for WorkloadOptions {
    fn default() -> Self {
        WorkloadOptions {
            max_units: None,
            prune_empty_pivots: true,
            factorized_costs: false,
        }
    }
}

/// The estimated workload `W(Σ, G)` plus estimation bookkeeping.
#[derive(Debug, Default)]
pub struct Workload {
    /// All work units — descriptors into [`Workload::slots`].
    pub units: Vec<WorkUnit>,
    /// The flat slot arena all units index into (the ROADMAP's
    /// "unit-slot arena"): estimation is allocation-free per unit, and
    /// every consumer resolves a unit via [`WorkUnit::slots`].
    pub slots: Vec<UnitSlot>,
    /// Wall-clock seconds spent estimating (parallelizable; the
    /// simulator divides it by `n`).
    pub estimation_seconds: f64,
    /// Units pruned by the emptiness probe.
    pub pruned: usize,
    /// True if `max_units` truncated the workload.
    pub truncated: bool,
    /// Worklist simulations attributable to this workload — for
    /// [`estimate_workload`] the count run *during the call* (with the
    /// shared [`ClassRegistry`], at most one per component isomorphism
    /// class of Σ; 0 when pruning is off or the borrowed registry
    /// already held the classes warm), and for
    /// [`IncrementalWorkload::workload`](crate::IncrementalWorkload::workload)
    /// the maintainer's registry total (one per class simulated over
    /// its lifetime). The probe behind the "simulate once per class"
    /// guarantee.
    pub simulations: usize,
}

impl Workload {
    /// Total load `t(|Σ|, W)` — the sum of unit costs.
    pub fn total_cost(&self) -> u64 {
        self.units.iter().map(|u| u.cost).sum()
    }

    /// A unit's slots, resolved against this workload's arena.
    #[inline]
    pub fn slots_of(&self, unit: &WorkUnit) -> &[UnitSlot] {
        unit.slots(&self.slots)
    }
}

/// Precomputes pivots and component plans for every rule of `Σ`
/// (`PV(ϕ)` is `O(|Q|²)`; §5.2).
pub fn plan_rules(sigma: &GfdSet) -> Vec<PivotedRule> {
    sigma
        .iter()
        .enumerate()
        .map(|(rule, gfd)| {
            let pv = pivot_vector(&gfd.pattern);
            let components: Vec<ComponentPlan> = pv
                .components
                .iter()
                .map(|c| {
                    let (pattern, orig_vars) = gfd.pattern.restrict(&c.vars);
                    // Invariant: component decomposition picks each
                    // pivot from the component's own variable set, so
                    // the restriction must contain it.
                    let local_pivot = VarId(
                        orig_vars
                            .iter()
                            .position(|&v| v == c.pivot)
                            .expect("pivot is in its component") as u32,
                    );
                    let pivot_label = pattern.label(local_pivot);
                    let width = tree_decomposition(&pattern).width();
                    ComponentPlan {
                        pattern,
                        orig_vars,
                        local_pivot,
                        pivot_label,
                        radius: c.radius,
                        width,
                    }
                })
                .collect();
            let symmetric_pair =
                components.len() == 2 && isomorphic(&components[0].pattern, &components[1].pattern);
            PivotedRule {
                rule,
                components,
                symmetric_pair,
            }
        })
        .collect()
}

/// Number of pivot candidates the component's label constraint admits
/// before any pruning.
fn pivot_universe(g: &Graph, plan: &ComponentPlan) -> usize {
    match plan.pivot_label {
        PatLabel::Sym(s) => g.extent(s).len(),
        PatLabel::Wildcard => g.node_count(),
    }
}

/// Extracts a component's feasible pivot candidates from an
/// already-computed (whole-graph) candidate space: the pivot variable's
/// simulation set, or nothing when the component is provably matchless.
/// Returns the sorted candidate list and how many raw candidates the
/// filter pruned.
pub fn pivots_from_space(
    g: &Graph,
    plan: &ComponentPlan,
    cs: &CandidateSpace,
) -> (Vec<NodeId>, usize) {
    let universe = pivot_universe(g, plan);
    if cs.is_empty_anywhere() {
        return (Vec::new(), universe);
    }
    let cands = cs.of(plan.local_pivot).to_vec();
    let pruned = universe - cands.len();
    (cands, pruned)
}

/// Pivot candidates for a component, optionally pruned by one dual
/// simulation of the component pattern over the whole graph. Returns
/// the sorted candidate list and how many raw candidates were pruned.
///
/// Replaces the per-candidate backtracking probe: a pivot candidate
/// outside `sim(z)` cannot anchor any match (the simulation contains
/// every match), and by the locality of subgraph isomorphism a match
/// pinned at the pivot lies inside the pivot's `c^i_Q`-hop block, so
/// the unscoped check is valid for the block-restricted search the
/// unit will actually run.
///
/// This is the standalone (one component, own simulation) entry point;
/// [`estimate_workload`] draws the same information from a
/// [`ClassRegistry`] shared across the whole Σ instead, so isomorphic
/// components pay for one simulation together.
pub fn feasible_pivots(g: &Graph, plan: &ComponentPlan, prune: bool) -> (Vec<NodeId>, usize) {
    if !prune {
        let all = match plan.pivot_label {
            PatLabel::Sym(s) => g.extent(s).to_vec(),
            PatLabel::Wildcard => g.nodes().collect(),
        };
        return (all, 0);
    }
    pivots_from_space(g, plan, &dual_simulation(&plan.pattern, g, None))
}

/// A cache of `c`-hop data blocks keyed by `(node, radius)` — blocks
/// repeat across rules that share pivots. Blocks are handed out as
/// [`Arc`]s (with their `|G_z̄|` size computed once), so work units
/// share them instead of deep-cloning per candidate.
#[derive(Default)]
pub struct BlockCache {
    cache: FxHashMap<(NodeId, usize), (Arc<NodeSet>, u64)>,
    /// Reusable BFS visited bitmap (cleared after every block).
    scratch: Vec<bool>,
}

impl BlockCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The `radius`-hop block around `pivot` (computed once).
    pub fn block(&mut self, g: &Graph, pivot: NodeId, radius: usize) -> Arc<NodeSet> {
        self.block_and_size(g, pivot, radius).0
    }

    /// Drops every cached block that contains one of `touched` (sorted
    /// node ids). A `c`-hop block can only change when an inserted or
    /// deleted edge has an endpoint *inside* it (BFS from the pivot
    /// never crosses an edge whose endpoints are both outside), so
    /// after invalidating these, the surviving entries are exact for
    /// the edited graph. Returns how many entries were dropped.
    pub fn invalidate_touching(&mut self, touched: &[NodeId]) -> usize {
        let before = self.cache.len();
        self.cache
            .retain(|_, (block, _)| !touched.iter().any(|&u| block.contains(u)));
        before - self.cache.len()
    }

    /// The block together with its `|G_z̄|` size measure (Example 11),
    /// both computed once per `(pivot, radius)`.
    pub fn block_and_size(
        &mut self,
        g: &Graph,
        pivot: NodeId,
        radius: usize,
    ) -> (Arc<NodeSet>, u64) {
        let scratch = &mut self.scratch;
        let (block, size) = self.cache.entry((pivot, radius)).or_insert_with(|| {
            if scratch.len() < g.node_count() {
                scratch.resize(g.node_count(), false);
            }
            let block = neighborhood::khop_nodes_scratch(g, &[pivot], radius, scratch);
            let size = block.block_size(g) as u64;
            (Arc::new(block), size)
        });
        (block.clone(), *size)
    }
}

/// Estimates `W(Σ, G)` (procedure `bPar`'s estimation phase / the
/// workload part of `disPar`) with a registry local to the call.
pub fn estimate_workload(sigma: &GfdSet, g: &Graph, opts: &WorkloadOptions) -> Workload {
    estimate_workload_in(sigma, g, opts, &ClassRegistry::new())
}

/// [`estimate_workload`] borrowing a caller-owned [`ClassRegistry`]:
/// every component of every rule registers into it and pivot
/// feasibility reads the **per-isomorphism-class** candidate spaces —
/// one simulation per class instead of one per component (Example 10's
/// transport, applied to the whole Σ). Callers that validate
/// repeatedly (or also run detection) pass the same registry so the
/// classes stay warm across calls.
pub fn estimate_workload_in(
    sigma: &GfdSet,
    g: &Graph,
    opts: &WorkloadOptions,
    registry: &ClassRegistry,
) -> Workload {
    let start = std::time::Instant::now();
    let sims_before = registry.simulations();
    let rules = plan_rules(sigma);
    let mut cache = BlockCache::new();
    let mut wl = Workload::default();

    'rules: for rule in &rules {
        // Per-component feasible candidates with their blocks. One
        // simulation per component *class* prunes infeasible pivots up
        // front; blocks are shared `Arc`s sized once in the cache.
        let mut per_component: Vec<Vec<(NodeId, Arc<NodeSet>, u64)>> = Vec::new();
        for plan in &rule.components {
            let (cands, pruned, fact) = if opts.prune_empty_pivots {
                let h = registry.register(&plan.pattern);
                let (cands, pruned) = pivots_from_space(g, plan, &registry.space(h, g));
                // The FAQ-grade cost source: per-pivot marginals of
                // the class's factorization. Saturated counts are
                // useless even as estimates; declines keep the proxy.
                let fact = (opts.factorized_costs && !cands.is_empty())
                    .then(|| registry.factorization(h, g))
                    .flatten()
                    .filter(|f| !f.overflowed() && f.has_marginals());
                (cands, pruned, fact)
            } else {
                let (cands, pruned) = feasible_pivots(g, plan, false);
                (cands, pruned, None)
            };
            wl.pruned += pruned;
            let width = plan.width.max(1) as u64;
            let mut feasible = Vec::with_capacity(cands.len());
            for cand in cands {
                let marginal = fact
                    .as_ref()
                    .and_then(|f| f.marginal(plan.local_pivot, cand));
                if marginal == Some(0) {
                    // Conclusive (the represented set contains every
                    // match): nothing anchors at this pivot, so no
                    // unit — or block — needs to exist for it.
                    wl.pruned += 1;
                    continue;
                }
                let (block, size) = cache.block_and_size(g, cand, plan.radius);
                feasible.push((cand, block, marginal.unwrap_or(size * width)));
            }
            per_component.push(feasible);
        }
        // Assemble pivot tuples (k ≤ 2 in practice, §5.2; general k
        // supported via recursion). Reserving the tuple-count upper
        // bound up front keeps the units vector from re-growing while
        // thousands of units stream in.
        let upper: usize = per_component
            .iter()
            .map(Vec::len)
            .try_fold(1usize, |a, b| a.checked_mul(b))
            .unwrap_or(usize::MAX);
        let cap_left = opts
            .max_units
            .map_or(upper, |c| c.saturating_sub(wl.units.len()));
        let expected = upper.min(cap_left).min(1 << 20);
        wl.units.reserve(expected);
        wl.slots
            .reserve(expected.saturating_mul(rule.components.len()));
        let mut tuple = Vec::new();
        if !assemble(rule, &per_component, 0, &mut tuple, &mut wl, opts.max_units) {
            wl.truncated = true;
            break 'rules;
        }
    }
    wl.estimation_seconds = start.elapsed().as_secs_f64();
    wl.simulations = registry.simulations() - sims_before;
    wl
}

/// Recursively builds pivot tuples; returns `false` when the cap hit.
pub(crate) fn assemble(
    rule: &PivotedRule,
    per_component: &[Vec<(NodeId, Arc<NodeSet>, u64)>],
    depth: usize,
    tuple: &mut Vec<usize>,
    wl: &mut Workload,
    cap: Option<usize>,
) -> bool {
    if depth == per_component.len() {
        // Injectivity first (component pivots must be distinct nodes)
        // so rejected tuples never allocate.
        for (c, &i) in tuple.iter().enumerate() {
            let a = per_component[c][i].0;
            if tuple[..c]
                .iter()
                .enumerate()
                .any(|(c2, &i2)| per_component[c2][i2].0 == a)
            {
                return true;
            }
        }
        let mut cost = 0u64;
        let offset = wl.slots.len();
        assert!(offset <= u32::MAX as usize, "slot arena exceeds u32 range");
        for (c, &i) in tuple.iter().enumerate() {
            // The tuple's third element is the candidate's unit-cost
            // contribution, precomputed by the producer (`|block| ×
            // width` proxy, or a factorized marginal).
            let (pivot, ref block, cost_c) = per_component[c][i];
            cost += cost_c;
            wl.slots.push(UnitSlot {
                pivot,
                block: block.clone(),
            });
        }
        wl.units.push(WorkUnit {
            rule: rule.rule as u32,
            slot_offset: offset as u32,
            slot_len: tuple.len() as u32,
            check_both_orientations: rule.symmetric_pair,
            cost,
        });
        if let Some(cap) = cap {
            if wl.units.len() >= cap {
                return false;
            }
        }
        return true;
    }
    let start = if rule.symmetric_pair && depth == 1 {
        // Unordered pairs: second index strictly above the first
        // (Example 10's duplicate removal).
        tuple[0] + 1
    } else {
        0
    };
    for i in start..per_component[depth].len() {
        tuple.push(i);
        let go_on = assemble(rule, per_component, depth + 1, tuple, wl, cap);
        tuple.pop();
        if !go_on {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_core::{Dependency, Gfd, Literal};
    use gfd_graph::{Value, Vocab};
    use gfd_pattern::PatternBuilder;
    use std::sync::Arc;

    /// Nine flights as in Example 10 (flat star entities).
    fn nine_flights() -> Graph {
        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        for i in 0..9 {
            let f = b.add_node_labeled("flight");
            let id = b.add_node_labeled("id");
            b.add_edge_labeled(f, id, "number");
            b.set_attr_named(id, "val", Value::str(&format!("FL{i}")));
        }
        b.freeze()
    }

    fn flight_pair_gfd(vocab: Arc<Vocab>) -> Gfd {
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "flight");
        let x1 = b.node("x1", "id");
        b.edge(x, x1, "number");
        let y = b.node("y", "flight");
        let y1 = b.node("y1", "id");
        b.edge(y, y1, "number");
        let q = b.build();
        let val = vocab.intern("val");
        Gfd::new(
            "pair",
            q,
            Dependency::new(vec![Literal::var_eq(VarId(1), val, VarId(3), val)], vec![]),
        )
    }

    #[test]
    fn plan_detects_symmetric_pair() {
        let g = nine_flights();
        let sigma = GfdSet::new(vec![flight_pair_gfd(g.vocab().clone())]);
        let rules = plan_rules(&sigma);
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].components.len(), 2);
        assert!(rules[0].symmetric_pair);
        for c in &rules[0].components {
            assert_eq!(c.radius, 1, "flight star has radius 1 at the hub");
        }
    }

    #[test]
    fn example10_unordered_pairs() {
        // 9 flights, symmetric 2-component rule → C(9,2) = 36 units.
        let g = nine_flights();
        let sigma = GfdSet::new(vec![flight_pair_gfd(g.vocab().clone())]);
        let wl = estimate_workload(&sigma, &g, &WorkloadOptions::default());
        assert_eq!(wl.units.len(), 36);
        assert!(wl.units.iter().all(|u| u.check_both_orientations));
        // Every unit's cost is the sum of two 1-hop star blocks: each
        // block = {flight, id} + 1 edge = 3 → cost 6.
        assert!(wl.units.iter().all(|u| u.cost == 6));
        assert_eq!(wl.total_cost(), 216);
    }

    #[test]
    fn single_component_rule_units() {
        let g = nine_flights();
        let vocab = g.vocab().clone();
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "flight");
        let x1 = b.node("x1", "id");
        b.edge(x, x1, "number");
        let q = b.build();
        let val = vocab.intern("val");
        let gfd = Gfd::new(
            "single",
            q,
            Dependency::always(vec![Literal::var_eq(VarId(1), val, VarId(1), val)]),
        );
        let wl = estimate_workload(&GfdSet::new(vec![gfd]), &g, &WorkloadOptions::default());
        assert_eq!(wl.units.len(), 9);
        assert!(wl.units.iter().all(|u| !u.check_both_orientations));
    }

    #[test]
    fn infeasible_pivots_pruned() {
        // A flight without an id leaf can never match the component.
        let g = nine_flights().edit(|b| {
            b.add_node_labeled("flight");
        });
        let sigma = GfdSet::new(vec![flight_pair_gfd(g.vocab().clone())]);
        let wl = estimate_workload(&sigma, &g, &WorkloadOptions::default());
        assert_eq!(wl.units.len(), 36, "the id-less flight contributes nothing");
        assert!(wl.pruned >= 2, "pruned once per component");
    }

    #[test]
    fn cap_truncates() {
        let g = nine_flights();
        let sigma = GfdSet::new(vec![flight_pair_gfd(g.vocab().clone())]);
        let wl = estimate_workload(
            &sigma,
            &g,
            &WorkloadOptions {
                max_units: Some(10),
                ..Default::default()
            },
        );
        assert_eq!(wl.units.len(), 10);
        assert!(wl.truncated);
    }

    /// The PR's acceptance probe: on a mined Σ whose rules share
    /// isomorphic component classes, `estimate_workload` runs exactly
    /// one worklist simulation per class — never one per component.
    #[test]
    fn estimate_simulates_once_per_isomorphism_class() {
        use gfd_datagen::{reallife_graph, RealLifeConfig, RealLifeKind};
        use gfd_pattern::canonical_form;

        let g = reallife_graph(&RealLifeConfig {
            scale: 0.02,
            ..RealLifeConfig::new(RealLifeKind::Yago2)
        });
        // Mine 8 rules, then pair each with an isomorphic twin whose
        // variables are declared in reverse order under fresh names —
        // the Example 10 shape at Σ scale: 16 rules, ≤ 8 + shared
        // classes among the mined half already.
        let mined = gfd_datagen::mine_gfds(
            &g,
            &gfd_datagen::RuleGenConfig {
                count: 8,
                pattern_nodes: 3,
                two_component_fraction: 0.25,
                ..Default::default()
            },
        );
        let mut rules: Vec<Gfd> = mined.iter().cloned().collect();
        for (i, gfd) in mined.iter().enumerate() {
            let twin = gfd_datagen::isomorphic_twin(&gfd.pattern, i);
            rules.push(Gfd::new(format!("twin-{i}"), twin, gfd.dep.clone()));
        }
        let sigma = GfdSet::new(rules);
        assert!(sigma.len() >= 16, "Σ must hold at least 16 rules");

        // Independently count the component isomorphism classes.
        let plans = plan_rules(&sigma);
        let components: Vec<&Pattern> = plans
            .iter()
            .flat_map(|r| r.components.iter().map(|c| &c.pattern))
            .collect();
        let mut codes: Vec<Vec<u64>> = components
            .iter()
            .map(|q| canonical_form(q).code().to_vec())
            .collect();
        codes.sort();
        codes.dedup();
        let classes = codes.len();
        assert!(
            classes < components.len(),
            "premise: the mined Σ must share component classes \
             ({classes} classes over {} components)",
            components.len()
        );

        let wl = estimate_workload(&sigma, &g, &WorkloadOptions::default());
        assert_eq!(
            wl.simulations,
            classes,
            "one simulation per isomorphism class, not per component ({} components)",
            components.len()
        );
    }

    /// Unit costs weight each block by its component's decomposition
    /// width: a triangle (width 2) counts its blocks twice, while the
    /// star rules above (width 1) keep cost = |G_z̄| exactly.
    #[test]
    fn cyclic_components_weight_unit_costs_by_width() {
        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        let ns: Vec<_> = (0..3).map(|_| b.add_node_labeled("person")).collect();
        for k in 0..3 {
            b.add_edge_labeled(ns[k], ns[(k + 1) % 3], "knows");
        }
        let g = b.freeze();
        let mut pb = PatternBuilder::new(g.vocab().clone());
        let x = pb.node("x", "person");
        let y = pb.node("y", "person");
        let z = pb.node("z", "person");
        pb.edge(x, y, "knows");
        pb.edge(y, z, "knows");
        pb.edge(z, x, "knows");
        let val = g.vocab().intern("val");
        let gfd = Gfd::new(
            "tri",
            pb.build(),
            Dependency::always(vec![Literal::var_eq(x, val, y, val)]),
        );
        let sigma = GfdSet::new(vec![gfd]);
        let rules = plan_rules(&sigma);
        assert_eq!(rules[0].components[0].width, 2, "triangle has width 2");
        let wl = estimate_workload(&sigma, &g, &WorkloadOptions::default());
        // Radius-1 block around any pivot is the whole 3-node triangle
        // plus its 3 edges → |G_z̄| = 6, weighted ×2 by the width.
        assert_eq!(wl.units.len(), 3);
        assert!(wl.units.iter().all(|u| u.cost == 12));
    }

    /// Factorized unit costs: per-pivot marginals replace the
    /// `|block| × width` proxy, and provably matchless pivots vanish.
    /// A 4-cycle fools dual simulation (its checks are degree-local,
    /// blind to cycle length) but not the factorization's bag-level
    /// edge checks, so its pivots carry zero marginal mass.
    #[test]
    fn factorized_costs_weight_by_marginal_and_prune_dead_pivots() {
        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        let tri: Vec<_> = (0..3).map(|_| b.add_node_labeled("person")).collect();
        for k in 0..3 {
            b.add_edge_labeled(tri[k], tri[(k + 1) % 3], "knows");
        }
        let cyc: Vec<_> = (0..4).map(|_| b.add_node_labeled("person")).collect();
        for k in 0..4 {
            b.add_edge_labeled(cyc[k], cyc[(k + 1) % 4], "knows");
        }
        let g = b.freeze();
        let mut pb = PatternBuilder::new(g.vocab().clone());
        let x = pb.node("x", "person");
        let y = pb.node("y", "person");
        let z = pb.node("z", "person");
        pb.edge(x, y, "knows");
        pb.edge(y, z, "knows");
        pb.edge(z, x, "knows");
        let val = g.vocab().intern("val");
        let gfd = Gfd::new(
            "tri",
            pb.build(),
            Dependency::always(vec![Literal::var_eq(x, val, y, val)]),
        );
        let sigma = GfdSet::new(vec![gfd]);

        // The proxy path keeps every simulation-admitted pivot.
        let proxy = estimate_workload(&sigma, &g, &WorkloadOptions::default());
        assert_eq!(proxy.units.len(), 7, "dual simulation admits the 4-cycle");

        let wl = estimate_workload(
            &sigma,
            &g,
            &WorkloadOptions {
                factorized_costs: true,
                ..Default::default()
            },
        );
        assert_eq!(wl.units.len(), 3, "zero-marginal 4-cycle pivots pruned");
        assert!(
            wl.units.iter().all(|u| u.cost == 1),
            "cost = marginal = one anchored rotation per triangle node"
        );
        assert!(wl.pruned >= 4, "each dead pivot counted as pruned");
    }

    #[test]
    fn block_cache_reuses() {
        let g = nine_flights();
        let mut cache = BlockCache::new();
        let b1 = cache.block(&g, NodeId(0), 1).clone();
        let b2 = cache.block(&g, NodeId(0), 1).clone();
        assert_eq!(b1, b2);
        assert_eq!(cache.cache.len(), 1);
    }
}
