//! `repVal` — parallel error detection with a replicated graph
//! (§6.1, Fig. 4, Theorem 10).
//!
//! The graph is available at every processor, so the only problem is
//! **workload balancing**: estimate `W(Σ, G)` (procedure `bPar`),
//! partition it 2-approximately over the `n` workers, run `localVio`
//! per worker, and union the local violation sets at the coordinator.
//!
//! Communication is limited to shipping work-unit descriptors out and
//! violations back — which is why `repVal` beats `disVal` on wall
//! clock at the price of replicating `G` (§7, Exp-1 observation (3)).

use std::sync::Arc;

use gfd_core::GfdSet;
use gfd_graph::Graph;

use crate::balance::assign;
use crate::cluster::{CostModel, SimClocks};
use crate::metrics::ParallelReport;
use crate::opt::{reduce_workload, split_large_units};
use crate::unitexec::{execute_unit, sort_violations, CacheStats, MultiQueryIndex, UnitScratch};
use crate::workload::{estimate_workload, plan_rules, WorkloadOptions};
use crate::Assignment;
use gfd_match::ClassRegistry;

/// Configuration of a `repVal` run.
#[derive(Clone, Debug)]
pub struct RepValConfig {
    /// Number of virtual processors.
    pub n: usize,
    /// Unit-assignment strategy (LPT or random).
    pub assignment: Assignment,
    /// Multi-query optimization (common sub-pattern caching).
    pub multi_query: bool,
    /// Workload reduction via implication. **Semantics note**: dropping
    /// an implied rule preserves whether inconsistencies are detected
    /// (`Vio = ∅` is unchanged), but the reported violation set lists
    /// only the surviving rules — so this is off by default and
    /// exercised by the ablation benchmarks.
    pub reduce_workload: bool,
    /// Replicate-and-split threshold for skewed blocks.
    pub split_threshold: Option<u64>,
    /// Message cost model.
    pub cost_model: CostModel,
    /// Workload-estimation knobs.
    pub workload: WorkloadOptions,
}

impl RepValConfig {
    /// The full algorithm (`repVal` in the figures).
    pub fn val(n: usize) -> Self {
        RepValConfig {
            n,
            assignment: Assignment::Balanced,
            multi_query: true,
            reduce_workload: false,
            split_threshold: None,
            cost_model: CostModel::default(),
            workload: WorkloadOptions::default(),
        }
    }

    /// `repnop`: no optimization strategies (multi-query processing,
    /// workload reduction, skew splitting) — balancing still on.
    pub fn nop(n: usize) -> Self {
        RepValConfig {
            multi_query: false,
            reduce_workload: false,
            ..Self::val(n)
        }
    }

    /// `repran`: random work-unit assignment (optimizations on).
    pub fn ran(n: usize, seed: u64) -> Self {
        RepValConfig {
            assignment: Assignment::Random { seed },
            ..Self::val(n)
        }
    }

    /// Enables skew splitting with threshold `theta`.
    pub fn with_split(mut self, theta: u64) -> Self {
        self.split_threshold = Some(theta);
        self
    }
}

/// Size cap for the implication-based reduction (reasoning on larger
/// rule sets would eat into detection time).
const REDUCTION_CAP: usize = 64;

/// Runs `repVal` and reports violations plus simulated timings.
///
/// The graph is "replicated at every processor" in the paper's model;
/// here every virtual worker reads the *same* frozen CSR snapshot
/// through one shared `Arc` — replication without copies.
pub fn rep_val(sigma: &GfdSet, g: &Arc<Graph>, cfg: &RepValConfig) -> ParallelReport {
    assert!(cfg.n > 0, "need at least one processor");
    let g: &Graph = g;
    let algo = match (cfg.assignment, cfg.multi_query || cfg.reduce_workload) {
        (Assignment::Balanced, true) => "repVal",
        (Assignment::Balanced, false) => "repnop",
        (Assignment::Random { .. }, _) => "repran",
    };

    // (0) Optional workload reduction at the coordinator.
    let (sigma_red, reduce_seconds) = if cfg.reduce_workload {
        reduce_workload(sigma, REDUCTION_CAP)
    } else {
        (sigma.clone(), 0.0)
    };

    // (1) bPar: estimate W(Σ, G) — parallelized, so charge /n.
    let plans = plan_rules(&sigma_red);
    let wl = estimate_workload(&sigma_red, g, &cfg.workload);
    let estimation_seconds = wl.estimation_seconds / cfg.n as f64;

    // (1b) Skew handling. Units are arena descriptors, so splitting
    // copies 24-byte records; the slot arena stays where it is.
    let split = split_large_units(&wl.units, cfg.split_threshold);
    let slots = &wl.slots;

    // (2) Partition the workload. With multi-query on, the balanced
    // strategy schedules pivot groups (sub-pattern scheduling) so that
    // units sharing cached enumerations land on one worker.
    let t0 = std::time::Instant::now();
    let costs: Vec<u64> = split.iter().map(|s| s.cost()).collect();
    let assignment = match (cfg.assignment, cfg.multi_query) {
        (Assignment::Balanced, true) => {
            // Group by (pivot, share): same-pivot units co-locate for
            // cache reuse, but shares of one split unit must spread
            // across workers — that is the whole point of splitting.
            let keys: Vec<u64> = split
                .iter()
                .map(|s| s.unit.slots(slots)[0].pivot.0 as u64 | ((s.share as u64) << 32))
                .collect();
            crate::balance::lpt_assign_grouped(&costs, &keys, cfg.n)
        }
        _ => assign(cfg.assignment, &costs, cfg.n),
    };
    let partition_seconds = t0.elapsed().as_secs_f64();

    // (3) localVio at each worker. One shared registry serves every
    // worker of the run — the paper's multi-query caching, promoted
    // from per-worker private caches to the serving tier, so an
    // enumeration paid by any worker is a hit for all of them.
    let mut clocks = SimClocks::new(cfg.n);
    let registry = ClassRegistry::new();
    let mqi = cfg
        .multi_query
        .then(|| MultiQueryIndex::build(&plans, &registry));
    let mut violations = Vec::new();
    let mut cache_stats = CacheStats::default();
    // Reused across workers: per-unit execution scratch (each worker
    // would own one in a real deployment).
    let mut scratch = UnitScratch::new();
    // Pass 1 — execute the primary share of every unit at its owner
    // (per-worker loop so the multi-query cache behaves like a real
    // local cache) and record the measured enumeration time per unit.
    let mut unit_elapsed: Vec<f64> =
        vec![0.0; split.iter().map(|s| s.unit_index + 1).max().unwrap_or(0)];
    for worker in 0..cfg.n {
        // Per-worker probe counters, summed into the report below.
        let mut worker_stats = CacheStats::default();
        // Messages are batched per worker: one shipment of unit
        // descriptors in (W_i(Σ, G), Fig. 4 line 2), one of violations
        // out (line 4), one of partial matches for split shares.
        let mut descriptor_bytes = 0u64;
        let mut violation_bytes = 0u64;
        let mut partial_bytes = 0u64;
        // One clock read per executed unit: each unit's elapsed time is
        // the span since the previous unit finished (the inter-unit
        // bookkeeping it absorbs is nanoseconds; reading the clock
        // twice per unit was a measurable share of the loop).
        let mut mark = std::time::Instant::now();
        for (i, su) in split.iter().enumerate() {
            if assignment[i] != worker {
                continue;
            }
            descriptor_bytes += 16 + 8 * su.unit.k() as u64;
            if su.share == 0 {
                let before = violations.len();
                execute_unit(
                    g,
                    &sigma_red,
                    &plans,
                    slots,
                    &su.unit,
                    mqi.as_ref(),
                    &registry,
                    &mut worker_stats,
                    &mut scratch,
                    &mut violations,
                );
                let now = std::time::Instant::now();
                unit_elapsed[su.unit_index] = (now - mark).as_secs_f64();
                mark = now;
                let found = (violations.len() - before) as u64;
                violation_bytes += found * 8 * su.unit.k().max(1) as u64;
            } else {
                mark = std::time::Instant::now();
            }
            if su.of > 1 {
                // Split shares ship partial matches instead of blocks
                // (appendix, replicate-and-split).
                partial_bytes += su.cost() * 8;
            }
        }
        if descriptor_bytes > 0 {
            clocks.charge_message(worker, descriptor_bytes, &cfg.cost_model);
        }
        if violation_bytes > 0 {
            clocks.charge_message(worker, violation_bytes, &cfg.cost_model);
        }
        if partial_bytes > 0 {
            clocks.charge_message(worker, partial_bytes, &cfg.cost_model);
        }
        cache_stats += worker_stats;
    }
    // Pass 2 — every share (primary included) carries 1/of of the
    // unit's measured enumeration time: splitting spreads a skewed
    // unit's work across processors.
    for (i, su) in split.iter().enumerate() {
        clocks.charge_compute(assignment[i], unit_elapsed[su.unit_index] / su.of as f64);
    }

    sort_violations(&mut violations);
    ParallelReport::from_clocks(
        algo,
        cfg.n,
        violations,
        &clocks,
        reduce_seconds,
        estimation_seconds,
        partition_seconds,
        split.len(),
        cache_stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_core::validate::detect_violations;
    use gfd_core::{Dependency, Gfd, Literal};
    use gfd_graph::{Value, Vocab};
    use gfd_pattern::PatternBuilder;
    use std::sync::Arc;

    fn flights(n: usize, dup: usize) -> Arc<Graph> {
        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        for i in 0..n {
            let f = b.add_node_labeled("flight");
            let id = b.add_node_labeled("id");
            let to = b.add_node_labeled("city");
            b.add_edge_labeled(f, id, "number");
            b.add_edge_labeled(f, to, "to");
            let idv = if i < dup {
                "DUP".into()
            } else {
                format!("FL{i}")
            };
            b.set_attr_named(id, "val", Value::str(&idv));
            b.set_attr_named(to, "val", Value::str(&format!("City{i}")));
        }
        Arc::new(b.freeze())
    }

    fn phi(vocab: Arc<Vocab>) -> Gfd {
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "flight");
        let x1 = b.node("x1", "id");
        let x2 = b.node("x2", "city");
        b.edge(x, x1, "number");
        b.edge(x, x2, "to");
        let y = b.node("y", "flight");
        let y1 = b.node("y1", "id");
        let y2 = b.node("y2", "city");
        b.edge(y, y1, "number");
        b.edge(y, y2, "to");
        let q = b.build();
        let val = vocab.intern("val");
        Gfd::new(
            "flight-dest",
            q,
            Dependency::new(
                vec![Literal::var_eq(x1, val, y1, val)],
                vec![Literal::var_eq(x2, val, y2, val)],
            ),
        )
    }

    #[test]
    fn repval_matches_sequential_detvio() {
        let g = flights(8, 3);
        let sigma = GfdSet::new(vec![phi(g.vocab().clone())]);
        let mut expected = detect_violations(&sigma, &g);
        crate::unitexec::sort_violations(&mut expected);
        for cfg in [
            RepValConfig::val(4),
            RepValConfig::nop(4),
            RepValConfig::ran(4, 7),
            RepValConfig::val(1),
        ] {
            let report = rep_val(&sigma, &g, &cfg);
            assert_eq!(report.violations, expected, "config {:?}", cfg.assignment);
        }
    }

    #[test]
    fn balanced_beats_random_makespan() {
        let g = flights(24, 6);
        let sigma = GfdSet::new(vec![phi(g.vocab().clone())]);
        let val = rep_val(&sigma, &g, &RepValConfig::val(4));
        let ran = rep_val(&sigma, &g, &RepValConfig::ran(4, 99));
        // Same violations either way.
        assert_eq!(val.violations.len(), ran.violations.len());
        // LPT's imbalance should not exceed random's by more than noise.
        assert!(val.imbalance() <= ran.imbalance() * 1.5 + 0.5);
    }

    #[test]
    fn multi_query_reports_hits() {
        let g = flights(10, 2);
        let sigma = GfdSet::new(vec![phi(g.vocab().clone())]);
        let with = rep_val(&sigma, &g, &RepValConfig::val(2));
        let without = rep_val(&sigma, &g, &RepValConfig::nop(2));
        assert!(with.cache_hits > 0);
        assert_eq!(without.cache_hits, 0);
        assert_eq!(with.violations, without.violations);
    }

    #[test]
    fn split_preserves_violations() {
        let g = flights(10, 4);
        let sigma = GfdSet::new(vec![phi(g.vocab().clone())]);
        let plain = rep_val(&sigma, &g, &RepValConfig::val(3));
        let split = rep_val(&sigma, &g, &RepValConfig::val(3).with_split(4));
        assert_eq!(plain.violations, split.violations);
        assert!(split.units > plain.units, "splitting adds shares");
    }

    #[test]
    fn report_fields_populated() {
        let g = flights(6, 2);
        let sigma = GfdSet::new(vec![phi(g.vocab().clone())]);
        let r = rep_val(&sigma, &g, &RepValConfig::val(2));
        assert_eq!(r.algo, "repVal");
        assert_eq!(r.n, 2);
        assert!(r.units > 0);
        assert!(r.total_seconds() > 0.0);
        assert!(r.bytes_shipped > 0, "unit descriptors count as traffic");
        assert_eq!(r.per_worker_busy.len(), 2);
    }
}
