//! `disVal` — parallel error detection on a fragmented graph
//! (§6.2, Theorem 11).
//!
//! `G` is partitioned into fragments `(F_1, …, F_n)`, one per worker,
//! with border-node bookkeeping. Error detection becomes a
//! *bi-criteria* problem: balance the workload **and** minimize the
//! data shipped to assemble data blocks that straddle fragments.
//!
//! Procedure `disPar` estimates partial work units per fragment,
//! assembles complete units at the coordinator, and assigns them with
//! a greedy bi-criteria strategy (Prop. 13): process units in
//! descending cost; among the workers whose projected load stays
//! within a slack of the best, pick the one that needs the least data
//! shipped. Procedure `dlocalVio` then evaluates each unit with one of
//! two schemes, whichever is estimated cheaper (the appendix's
//! *prefetching* vs *partial detection*):
//!
//! * **prefetch** — ship the unit's missing block nodes to the worker
//!   (each node fetched at most once per worker, then cached);
//! * **partial** — ship per-component partial matches instead, sized
//!   by a fragment-local graph-simulation estimate.
//!
//! In this reproduction the cluster is simulated (see crate docs):
//! enumeration always runs on the in-memory graph, while the bytes and
//! seconds that a real deployment would spend shipping data are
//! charged to the communication clocks — so violations are exact and
//! the communication behaviour (Fig. 5(j–l)) is faithfully modeled.

use std::sync::Arc;

use gfd_util::{FxHashMap, FxHashSet};

use gfd_core::GfdSet;
use gfd_graph::{Fragmentation, Graph, NodeId};
use gfd_match::dual_simulation;

use crate::balance::random_assign;
use crate::cluster::{CostModel, SimClocks};
use crate::metrics::ParallelReport;
use crate::opt::{reduce_workload, split_large_units, SplitUnit};
use crate::unitexec::{execute_unit, sort_violations, CacheStats, MultiQueryIndex, UnitScratch};
use crate::workload::{estimate_workload, plan_rules, PivotedRule, UnitSlot, WorkloadOptions};
use crate::Assignment;
use gfd_match::ClassRegistry;

/// Configuration of a `disVal` run.
#[derive(Clone, Debug)]
pub struct DisValConfig {
    /// Number of processors (must equal the fragmentation's `n`).
    pub n: usize,
    /// Assignment strategy: bi-criteria greedy, or random (`disran`).
    pub assignment: Assignment,
    /// Multi-query optimization.
    pub multi_query: bool,
    /// Workload reduction via implication.
    pub reduce_workload: bool,
    /// Per-unit evaluation-scheme selection (prefetch vs partial);
    /// `false` (as in `disnop`) always prefetches.
    pub scheme_choice: bool,
    /// Replicate-and-split threshold for skewed blocks.
    pub split_threshold: Option<u64>,
    /// Load-balance slack of the bi-criteria greedy (fraction of the
    /// current best load; 0.1 = 10%).
    pub balance_slack: f64,
    /// Message cost model.
    pub cost_model: CostModel,
    /// Workload-estimation knobs.
    pub workload: WorkloadOptions,
}

impl DisValConfig {
    /// The full algorithm (`disVal`).
    pub fn val(n: usize) -> Self {
        DisValConfig {
            n,
            assignment: Assignment::Balanced,
            multi_query: true,
            reduce_workload: false,
            scheme_choice: true,
            split_threshold: None,
            balance_slack: 0.15,
            cost_model: CostModel::default(),
            workload: WorkloadOptions::default(),
        }
    }

    /// `disnop`: optimizations off (no multi-query, no reduction, no
    /// scheme choice, no splitting); bi-criteria assignment stays.
    pub fn nop(n: usize) -> Self {
        DisValConfig {
            multi_query: false,
            reduce_workload: false,
            scheme_choice: false,
            ..Self::val(n)
        }
    }

    /// `disran`: random assignment (optimizations on).
    pub fn ran(n: usize, seed: u64) -> Self {
        DisValConfig {
            assignment: Assignment::Random { seed },
            ..Self::val(n)
        }
    }

    /// Enables skew splitting with threshold `theta`.
    pub fn with_split(mut self, theta: u64) -> Self {
        self.split_threshold = Some(theta);
        self
    }
}

const REDUCTION_CAP: usize = 64;

/// Bytes a worker must fetch to own a unit: the wire size of block
/// nodes it neither owns nor has cached.
fn prefetch_bytes(
    g: &Graph,
    slots: &[UnitSlot],
    worker: usize,
    frag: &Fragmentation,
    cached: Option<&FxHashSet<NodeId>>,
) -> u64 {
    let mut seen = FxHashSet::default();
    let mut bytes = 0u64;
    for slot in slots {
        for node in slot.block.iter() {
            if frag.owner(node).index() == worker {
                continue;
            }
            if cached.is_some_and(|c| c.contains(&node)) {
                continue;
            }
            if seen.insert(node) {
                bytes += g.node_wire_size(node) as u64;
            }
        }
    }
    bytes
}

/// Block size (in nodes) below which [`partial_match_bytes`] runs the
/// full block-scoped worklist simulation and sizes partial matches
/// from the *refined* relation. Above it, the seeding stage — per-
/// variable label-candidate counts, `O(|block| · |vars|)` — keeps the
/// per-unit cost bounded: the fixpoint's cost grows with the block's
/// edge volume while its accuracy gain matters most exactly where
/// blocks are small and label counts over-estimate badly (a block
/// admits many candidates by label that one missing edge disqualifies).
pub(crate) const PARTIAL_REFINE_MAX_BLOCK: usize = 256;

/// Estimated bytes for shipping partial matches of a unit's
/// components. The paper estimates partial-match sizes "via graph
/// simulation from pattern `Q[x̄]` to `F_i`": for small blocks that is
/// taken literally — a block-scoped dual simulation whose surviving
/// candidate counts size the rows (the worklist fixpoint is cheap at
/// block scale) — while blocks above
/// [`PARTIAL_REFINE_MAX_BLOCK`] fall back to the simulation's seeding
/// stage (label counts per block), an upper bound of the refined
/// relation.
fn partial_match_bytes(
    g: &Graph,
    plans: &[PivotedRule],
    slots: &[UnitSlot],
    su: &SplitUnit,
) -> u64 {
    let rule = &plans[su.unit.rule()];
    let unit_slots = su.unit.slots(slots);
    let mut bytes = 0u64;
    for (i, comp) in rule.components.iter().enumerate() {
        let block = &unit_slots[i.min(unit_slots.len() - 1)].block;
        let rows = if block.len() <= PARTIAL_REFINE_MAX_BLOCK {
            dual_simulation(&comp.pattern, g, Some(block)).total_size() as u64
        } else {
            let mut rows = 0u64;
            for v in comp.pattern.vars() {
                let label = comp.pattern.label(v);
                rows += block.iter().filter(|&n| label.admits(g.label(n))).count() as u64;
            }
            rows
        };
        bytes += rows * 8 * comp.pattern.node_count().max(1) as u64;
    }
    bytes
}

/// Runs `disVal` on a fragmented graph.
///
/// # Panics
/// Panics if `cfg.n != frag.n()`.
pub fn dis_val(
    sigma: &GfdSet,
    g: &Arc<Graph>,
    frag: &Fragmentation,
    cfg: &DisValConfig,
) -> ParallelReport {
    let g: &Graph = g;
    assert!(cfg.n > 0, "dis_val: need at least one processor");
    assert_eq!(cfg.n, frag.n(), "one fragment per processor");
    let algo = match (cfg.assignment, cfg.multi_query || cfg.scheme_choice) {
        (Assignment::Balanced, true) => "disVal",
        (Assignment::Balanced, false) => "disnop",
        (Assignment::Random { .. }, _) => "disran",
    };

    // (0) Optional workload reduction.
    let (sigma_red, reduce_seconds) = if cfg.reduce_workload {
        reduce_workload(sigma, REDUCTION_CAP)
    } else {
        (sigma.clone(), 0.0)
    };

    // (1) disPar: per-fragment estimation of partial units, assembled
    // at the coordinator. The simulator computes the assembled units
    // directly from the whole graph; the estimation work is charged as
    // parallel (÷ n), and the partial-unit messages (one per unit and
    // fragment touched) are charged to communication.
    let plans = plan_rules(&sigma_red);
    let wl = estimate_workload(&sigma_red, g, &cfg.workload);
    let estimation_seconds = wl.estimation_seconds / cfg.n as f64;
    let split = split_large_units(&wl.units, cfg.split_threshold);
    let slots = &wl.slots;

    let mut clocks = SimClocks::new(cfg.n);
    {
        // Partial-unit descriptors flow from every fragment owning a
        // pivot to the coordinator — batched into one message per
        // fragment (M_i of disPar).
        let mut desc_bytes = vec![0u64; cfg.n];
        for su in &split {
            if su.share != 0 {
                continue;
            }
            let mut owners: Vec<usize> = su
                .unit
                .pivots(slots)
                .map(|p| frag.owner(p).index())
                .collect();
            owners.sort_unstable();
            owners.dedup();
            for w in owners {
                desc_bytes[w] += 24 + 8 * su.unit.k() as u64;
            }
        }
        for (w, bytes) in desc_bytes.into_iter().enumerate() {
            if bytes > 0 {
                clocks.charge_message(w, bytes, &cfg.cost_model);
            }
        }
    }

    // (1c) Per-unit, per-fragment block byte sizes `|G^j_z̄|`. In a
    // real deployment each fragment computes its local share during
    // estimation and ships it inside the partial unit, so this work is
    // parallel — charged to estimation (÷ n), not to the coordinator.
    let t_sizes = std::time::Instant::now();
    // One breakdown per *original* unit; split shares reuse it (their
    // blocks are identical).
    let unit_count = split.iter().map(|s| s.unit_index + 1).max().unwrap_or(0);
    let mut per_unit_breakdown: Vec<Option<(u64, Vec<u64>)>> = vec![None; unit_count];
    for su in &split {
        if per_unit_breakdown[su.unit_index].is_some() {
            continue;
        }
        let mut by_frag = vec![0u64; cfg.n];
        let mut total = 0u64;
        let mut seen = FxHashSet::default();
        for slot in su.unit.slots(slots) {
            for node in slot.block.iter() {
                if !seen.insert(node) {
                    continue;
                }
                let bytes = g.node_wire_size(node) as u64;
                by_frag[frag.owner(node).index()] += bytes;
                total += bytes;
            }
        }
        per_unit_breakdown[su.unit_index] = Some((total, by_frag));
    }
    let byte_breakdown: Vec<&(u64, Vec<u64>)> = split
        .iter()
        .map(|su| {
            per_unit_breakdown[su.unit_index]
                .as_ref()
                .expect("the loop above fills a breakdown for every split share's unit_index")
        })
        .collect();
    let estimation_seconds = estimation_seconds + t_sizes.elapsed().as_secs_f64() / cfg.n as f64;

    // (2) Bi-criteria assignment (Prop. 13): descending cost; among
    // load-feasible workers pick minimal shipment — per-worker
    // shipment is `total − local`, O(1) per worker from the breakdown.
    let t0 = std::time::Instant::now();
    let assignment: Vec<usize> = match cfg.assignment {
        Assignment::Random { seed } => random_assign(split.len(), cfg.n, seed),
        Assignment::Balanced => {
            // Units are scheduled in pivot groups when the multi-query
            // cache is on (sub-pattern scheduling — see repVal), or
            // individually otherwise; either way: descending cost,
            // load-feasible workers, minimal shipment.
            let mut groups: FxHashMap<u64, (u64, Vec<usize>)> = FxHashMap::default();
            for (i, su) in split.iter().enumerate() {
                // Same-pivot units co-locate (cache reuse) but shares of
                // one split unit must spread across workers.
                let key = if cfg.multi_query {
                    su.unit.slots(slots)[0].pivot.0 as u64 | ((su.share as u64) << 32)
                } else {
                    i as u64
                };
                let e = groups.entry(key).or_default();
                e.0 += su.cost();
                e.1.push(i);
            }
            let mut group_list: Vec<(u64, Vec<usize>)> = groups.into_values().collect();
            group_list.sort_by_key(|(c, members)| (std::cmp::Reverse(*c), members[0]));
            let mut load = vec![0u64; cfg.n];
            let mut out = vec![0usize; split.len()];
            let mut group_by_frag = vec![0u64; cfg.n];
            for (cost, members) in group_list {
                // Aggregate the group's per-fragment bytes once, then
                // per-worker shipment is O(1).
                let mut group_total = 0u64;
                group_by_frag.iter_mut().for_each(|b| *b = 0);
                for &i in &members {
                    let (total, by_frag) = &byte_breakdown[i];
                    group_total += total;
                    for (acc, b) in group_by_frag.iter_mut().zip(by_frag) {
                        *acc += b;
                    }
                }
                // Invariant: the entry assert guarantees `load` has
                // `cfg.n > 0` slots.
                let min_load = *load.iter().min().expect("n > 0");
                let slack = ((min_load as f64 * cfg.balance_slack) as u64).max(cost);
                let mut best: Option<(u64, usize)> = None;
                for w in 0..cfg.n {
                    if load[w] > min_load + slack {
                        continue;
                    }
                    let ship = group_total - group_by_frag[w];
                    if best.is_none_or(|(b, bw)| (ship, w) < (b, bw)) {
                        best = Some((ship, w));
                    }
                }
                // Invariant: `slack >= 0`, so the min-load worker always
                // passes the feasibility filter and `best` is `Some`.
                let (_, w) = best.expect("at least the min-load worker is feasible");
                load[w] += cost;
                for i in members {
                    out[i] = w;
                }
            }
            out
        }
    };
    let partition_seconds = t0.elapsed().as_secs_f64();

    // (3) dlocalVio at each worker, with per-worker node caches and
    // one shared match-table registry for the whole run.
    let registry = ClassRegistry::new();
    let mqi = cfg
        .multi_query
        .then(|| MultiQueryIndex::build(&plans, &registry));
    let mut violations = Vec::new();
    let mut cache_stats = CacheStats::default();
    let mut scratch = UnitScratch::new();
    // Pass 1 — execute primary shares (per-worker loops so both the
    // multi-query cache and the per-worker node cache behave like real
    // local caches) and record the measured time per unit.
    let mut unit_elapsed: Vec<f64> =
        vec![0.0; split.iter().map(|s| s.unit_index + 1).max().unwrap_or(0)];
    for worker in 0..cfg.n {
        let mut node_cache: FxHashSet<NodeId> = FxHashSet::default();
        let mut worker_stats = CacheStats::default();
        // Shipment is batched per worker: prefetches stream from peer
        // fragments (bulk, nodes deduplicated by the cache), partial
        // matches are pipelined, violations return to the coordinator
        // once — so latency is paid per category, bytes per node/row.
        let mut fetch_bytes = 0u64;
        let mut partial_bytes = 0u64;
        let mut violation_bytes = 0u64;
        for (i, su) in split.iter().enumerate() {
            if assignment[i] != worker {
                continue;
            }
            if su.of > 1 {
                // Replicated split shares ship partial matches rather
                // than data blocks (appendix, replicate-and-split).
                partial_bytes += su.cost() * 8;
            } else if cfg.scheme_choice {
                // Scheme selection: prefetch vs partial-match shipping.
                let pre = prefetch_bytes(g, su.unit.slots(slots), worker, frag, Some(&node_cache));
                let part = partial_match_bytes(g, &plans, slots, su);
                if part < pre {
                    partial_bytes += part;
                } else {
                    for slot in su.unit.slots(slots) {
                        for node in slot.block.iter() {
                            if frag.owner(node).index() != worker {
                                node_cache.insert(node);
                            }
                        }
                    }
                    fetch_bytes += pre;
                }
            } else {
                let pre = prefetch_bytes(g, su.unit.slots(slots), worker, frag, Some(&node_cache));
                for slot in su.unit.slots(slots) {
                    for node in slot.block.iter() {
                        if frag.owner(node).index() != worker {
                            node_cache.insert(node);
                        }
                    }
                }
                fetch_bytes += pre;
            }
            if su.share == 0 {
                let before = violations.len();
                let start = std::time::Instant::now();
                execute_unit(
                    g,
                    &sigma_red,
                    &plans,
                    slots,
                    &su.unit,
                    mqi.as_ref(),
                    &registry,
                    &mut worker_stats,
                    &mut scratch,
                    &mut violations,
                );
                unit_elapsed[su.unit_index] = start.elapsed().as_secs_f64();
                let found = (violations.len() - before) as u64;
                violation_bytes += found * 8 * su.unit.k().max(1) as u64;
            }
        }
        for bytes in [fetch_bytes, partial_bytes, violation_bytes] {
            if bytes > 0 {
                clocks.charge_message(worker, bytes, &cfg.cost_model);
            }
        }
        cache_stats += worker_stats;
    }
    // Pass 2 — every share carries 1/of of its unit's measured time.
    for (i, su) in split.iter().enumerate() {
        clocks.charge_compute(assignment[i], unit_elapsed[su.unit_index] / su.of as f64);
    }

    sort_violations(&mut violations);
    ParallelReport::from_clocks(
        algo,
        cfg.n,
        violations,
        &clocks,
        reduce_seconds,
        estimation_seconds,
        partition_seconds,
        split.len(),
        cache_stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_core::validate::detect_violations;
    use gfd_core::{Dependency, Gfd, Literal};
    use gfd_graph::{PartitionStrategy, Value, Vocab};
    use gfd_pattern::PatternBuilder;
    use std::sync::Arc;

    fn flights(n: usize, dup: usize) -> Arc<Graph> {
        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        for i in 0..n {
            let f = b.add_node_labeled("flight");
            let id = b.add_node_labeled("id");
            let to = b.add_node_labeled("city");
            b.add_edge_labeled(f, id, "number");
            b.add_edge_labeled(f, to, "to");
            let idv = if i < dup {
                "DUP".into()
            } else {
                format!("FL{i}")
            };
            b.set_attr_named(id, "val", Value::str(&idv));
            b.set_attr_named(to, "val", Value::str(&format!("City{i}")));
        }
        Arc::new(b.freeze())
    }

    fn phi(vocab: Arc<Vocab>) -> Gfd {
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "flight");
        let x1 = b.node("x1", "id");
        let x2 = b.node("x2", "city");
        b.edge(x, x1, "number");
        b.edge(x, x2, "to");
        let y = b.node("y", "flight");
        let y1 = b.node("y1", "id");
        let y2 = b.node("y2", "city");
        b.edge(y, y1, "number");
        b.edge(y, y2, "to");
        let q = b.build();
        let val = vocab.intern("val");
        Gfd::new(
            "flight-dest",
            q,
            Dependency::new(
                vec![Literal::var_eq(x1, val, y1, val)],
                vec![Literal::var_eq(x2, val, y2, val)],
            ),
        )
    }

    #[test]
    fn disval_matches_sequential_detvio() {
        let g = flights(9, 3);
        let sigma = GfdSet::new(vec![phi(g.vocab().clone())]);
        let mut expected = detect_violations(&sigma, &g);
        crate::unitexec::sort_violations(&mut expected);
        for n in [1usize, 3] {
            let frag = Fragmentation::partition(&g, n, PartitionStrategy::Contiguous);
            for cfg in [
                DisValConfig::val(n),
                DisValConfig::nop(n),
                DisValConfig::ran(n, 5),
            ] {
                let report = dis_val(&sigma, &g, &frag, &cfg);
                assert_eq!(report.violations, expected, "{} n={n}", report.algo);
            }
        }
    }

    #[test]
    fn communication_is_tracked() {
        let g = flights(12, 4);
        let sigma = GfdSet::new(vec![phi(g.vocab().clone())]);
        // Hash partitioning maximizes cross-fragment blocks.
        let frag = Fragmentation::partition(&g, 3, PartitionStrategy::Hash);
        let report = dis_val(&sigma, &g, &frag, &DisValConfig::val(3));
        assert!(
            report.bytes_shipped > 0,
            "cross-fragment blocks must ship data"
        );
        assert!(report.comm_seconds > 0.0);
    }

    #[test]
    fn bicriteria_ships_less_than_random() {
        let g = flights(24, 6);
        let sigma = GfdSet::new(vec![phi(g.vocab().clone())]);
        let frag = Fragmentation::partition(&g, 4, PartitionStrategy::BfsClustered);
        let val = dis_val(&sigma, &g, &frag, &DisValConfig::val(4));
        let ran = dis_val(&sigma, &g, &frag, &DisValConfig::ran(4, 11));
        assert_eq!(val.violations, ran.violations);
        assert!(
            val.bytes_shipped <= ran.bytes_shipped,
            "bi-criteria ({}) should not ship more than random ({})",
            val.bytes_shipped,
            ran.bytes_shipped
        );
    }

    #[test]
    fn scheme_choice_never_ships_more() {
        let g = flights(16, 5);
        let sigma = GfdSet::new(vec![phi(g.vocab().clone())]);
        let frag = Fragmentation::partition(&g, 4, PartitionStrategy::Hash);
        let with = dis_val(&sigma, &g, &frag, &DisValConfig::val(4));
        let without = dis_val(
            &sigma,
            &g,
            &frag,
            &DisValConfig {
                scheme_choice: false,
                ..DisValConfig::val(4)
            },
        );
        assert_eq!(with.violations, without.violations);
        assert!(with.bytes_shipped <= without.bytes_shipped);
    }

    /// The partial-match estimate crossover: small blocks are sized
    /// from the *refined* block-scoped simulation (strictly tighter
    /// when the block admits label-compatible nodes that refinement
    /// disqualifies), large blocks keep the seeding-stage label counts.
    #[test]
    fn partial_match_estimate_crossover() {
        use crate::opt::SplitUnit;
        use crate::workload::{BlockCache, UnitSlot, WorkUnit};

        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        // A complete flight star f → id, f → city…
        let f = b.add_node_labeled("flight");
        let id = b.add_node_labeled("id");
        let c = b.add_node_labeled("city");
        b.add_edge_labeled(f, id, "number");
        b.add_edge_labeled(f, c, "to");
        // …plus a second flight inside f's block that lacks both star
        // edges: label-admitted for the pivot variable, refined away.
        let f2 = b.add_node_labeled("flight");
        b.add_edge_labeled(f, f2, "alias");
        let g = b.freeze();
        let sigma = GfdSet::new(vec![{
            let mut pb = PatternBuilder::new(g.vocab().clone());
            let x = pb.node("x", "flight");
            let x1 = pb.node("x1", "id");
            let x2 = pb.node("x2", "city");
            pb.edge(x, x1, "number");
            pb.edge(x, x2, "to");
            let val = g.vocab().intern("val");
            gfd_core::Gfd::new(
                "star",
                pb.build(),
                gfd_core::Dependency::always(vec![gfd_core::Literal::var_eq(x1, val, x1, val)]),
            )
        }]);
        let plans = plan_rules(&sigma);
        let mut cache = BlockCache::new();
        let mk_unit = |slots: &mut Vec<UnitSlot>, block: Arc<gfd_graph::NodeSet>, pivot| {
            let offset = slots.len() as u32;
            slots.push(UnitSlot { pivot, block });
            SplitUnit {
                unit: WorkUnit {
                    rule: 0,
                    slot_offset: offset,
                    slot_len: 1,
                    check_both_orientations: false,
                    cost: 0,
                },
                unit_index: 0,
                share: 0,
                of: 1,
            }
        };

        // Small block (4 nodes ≤ threshold): the refined path. Label
        // seeding would count both flights (rows 2+1+1 = 4); the
        // refined relation drops f2 (rows 1+1+1 = 3).
        let mut slots: Vec<UnitSlot> = Vec::new();
        let block = cache.block(&g, f, 1);
        assert!(block.len() <= PARTIAL_REFINE_MAX_BLOCK);
        let su = mk_unit(&mut slots, block.clone(), f);
        let nvars = 3u64;
        let refined = gfd_match::dual_simulation(&plans[0].components[0].pattern, &g, Some(&block))
            .total_size() as u64;
        assert_eq!(refined, 3);
        assert_eq!(
            partial_match_bytes(&g, &plans, &slots, &su),
            refined * 8 * nvars
        );
        assert!(partial_match_bytes(&g, &plans, &slots, &su) < 4 * 8 * nvars);

        // Large block (> threshold): the seeding path counts every
        // label-admitted node, including ids refinement would drop
        // (they hang off the hub by a non-star edge).
        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        let hub = b.add_node_labeled("flight");
        for _ in 0..260 {
            let leaf = b.add_node_labeled("id");
            b.add_edge_labeled(hub, leaf, "number");
        }
        for _ in 0..50 {
            let orphan = b.add_node_labeled("id");
            b.add_edge_labeled(hub, orphan, "alias");
        }
        let city = b.add_node_labeled("city");
        b.add_edge_labeled(hub, city, "to");
        let g2 = b.freeze();
        let sigma2 = GfdSet::new(vec![{
            let mut pb = PatternBuilder::new(g2.vocab().clone());
            let x = pb.node("x", "flight");
            let x1 = pb.node("x1", "id");
            let x2 = pb.node("x2", "city");
            pb.edge(x, x1, "number");
            pb.edge(x, x2, "to");
            let val = g2.vocab().intern("val");
            gfd_core::Gfd::new(
                "star2",
                pb.build(),
                gfd_core::Dependency::always(vec![gfd_core::Literal::var_eq(x1, val, x1, val)]),
            )
        }]);
        let plans2 = plan_rules(&sigma2);
        let mut cache2 = BlockCache::new();
        let big = cache2.block(&g2, hub, 1);
        assert!(big.len() > PARTIAL_REFINE_MAX_BLOCK);
        let mut slots2: Vec<UnitSlot> = Vec::new();
        let su2 = mk_unit(&mut slots2, big.clone(), hub);
        let seeded_rows = (1 + 310 + 1) as u64; // flights + ids + cities by label
        assert_eq!(
            partial_match_bytes(&g2, &plans2, &slots2, &su2),
            seeded_rows * 8 * 3
        );
        let refined_rows =
            gfd_match::dual_simulation(&plans2[0].components[0].pattern, &g2, Some(&big))
                .total_size() as u64;
        assert!(
            refined_rows < seeded_rows,
            "premise: refinement would have been tighter ({refined_rows} vs {seeded_rows})"
        );
    }

    #[test]
    fn single_fragment_ships_nothing_for_blocks() {
        let g = flights(8, 2);
        let sigma = GfdSet::new(vec![phi(g.vocab().clone())]);
        let frag = Fragmentation::partition(&g, 1, PartitionStrategy::Contiguous);
        let report = dis_val(&sigma, &g, &frag, &DisValConfig::nop(1));
        // Only descriptor/violation messages, no block fetches: with a
        // single fragment every node is local. Descriptors are ≤ 64
        // bytes per unit; violations ≤ 16 bytes each.
        let overhead = report.units as u64 * 64 + report.violations.len() as u64 * 16;
        assert!(
            report.bytes_shipped <= overhead,
            "{} > {overhead}",
            report.bytes_shipped
        );
    }
}
