//! Reports produced by the parallel detection algorithms.

use gfd_core::Violation;

use crate::cluster::SimClocks;
use crate::unitexec::CacheStats;

/// Everything a `repVal`/`disVal` run reports: the violations plus the
/// simulated-time breakdown the figures plot.
#[derive(Debug)]
pub struct ParallelReport {
    /// Algorithm label (`repVal`, `repnop`, `disran`, …).
    pub algo: String,
    /// Number of (virtual) processors.
    pub n: usize,
    /// The violations `Vio(Σ, G)` found.
    pub violations: Vec<Violation>,
    /// Seconds the coordinator spent minimizing `Σ` (workload
    /// reduction) — zero when the optimization is off.
    pub reduce_seconds: f64,
    /// Workload-estimation seconds, already divided by `n`
    /// (estimation is parallelized across processors).
    pub estimation_seconds: f64,
    /// Coordinator partition/assignment seconds.
    pub partition_seconds: f64,
    /// Compute makespan `max_i busy_i` over the virtual workers.
    pub compute_seconds: f64,
    /// Communication makespan (parallel shipment).
    pub comm_seconds: f64,
    /// Total bytes shipped between sites.
    pub bytes_shipped: u64,
    /// Number of messages.
    pub messages: u64,
    /// Work units executed.
    pub units: usize,
    /// Per-worker busy seconds (for balance inspection).
    pub per_worker_busy: Vec<f64>,
    /// Multi-query cache hits (0 when the optimization is off).
    pub cache_hits: u64,
    /// Multi-query cache misses (enumerations actually run).
    pub cache_misses: u64,
    /// Cold artifacts reclaimed by the shared registry's LRU pass for
    /// this run's probes.
    pub cache_evicted_cold: u64,
    /// Eviction candidates skipped because a worker still held their
    /// table (refcount-aware deferral); they drain once pins drop.
    pub cache_evictions_deferred: u64,
    /// Worker panics caught by the panic-isolated executor (0 for the
    /// simulated-cluster algorithms and clean threaded runs).
    pub unit_panics: u64,
    /// Units that completed only after at least one panicked attempt.
    pub units_retried: u64,
    /// Units abandoned after exhausting retries. Always *reported*,
    /// never silently dropped: callers recover them sequentially (the
    /// standing-violation service) or treat the run as failed.
    pub quarantined_units: u64,
}

impl ParallelReport {
    /// Assembles a report from clocks and bookkeeping.
    #[allow(clippy::too_many_arguments)]
    pub fn from_clocks(
        algo: impl Into<String>,
        n: usize,
        violations: Vec<Violation>,
        clocks: &SimClocks,
        reduce_seconds: f64,
        estimation_seconds: f64,
        partition_seconds: f64,
        units: usize,
        cache: CacheStats,
    ) -> Self {
        ParallelReport {
            algo: algo.into(),
            n,
            violations,
            reduce_seconds,
            estimation_seconds,
            partition_seconds,
            compute_seconds: clocks.compute_makespan(),
            comm_seconds: clocks.comm_makespan(),
            bytes_shipped: clocks.total_bytes(),
            messages: clocks.total_messages(),
            units,
            per_worker_busy: clocks.busy.clone(),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evicted_cold: cache.evicted_cold,
            cache_evictions_deferred: cache.eviction_deferred_pinned,
            unit_panics: 0,
            units_retried: 0,
            quarantined_units: 0,
        }
    }

    /// The simulated parallel response time
    /// `T(|Σ|, |G|, n) = reduce + est/n + partition + makespan + comm`.
    pub fn total_seconds(&self) -> f64 {
        self.reduce_seconds
            + self.estimation_seconds
            + self.partition_seconds
            + self.compute_seconds
            + self.comm_seconds
    }

    /// Imbalance ratio: makespan over mean busy time (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let mean =
            self.per_worker_busy.iter().sum::<f64>() / self.per_worker_busy.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            self.compute_seconds / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::CostModel;

    #[test]
    fn totals_add_up() {
        let mut clocks = SimClocks::new(2);
        clocks.charge_compute(0, 1.0);
        clocks.charge_compute(1, 3.0);
        clocks.charge_message(
            0,
            1_000,
            &CostModel {
                bandwidth: 1000.0,
                latency: 0.0,
            },
        );
        let r = ParallelReport::from_clocks(
            "test",
            2,
            vec![],
            &clocks,
            0.5,
            0.25,
            0.25,
            7,
            CacheStats::default(),
        );
        assert!((r.compute_seconds - 3.0).abs() < 1e-9);
        assert!((r.comm_seconds - 1.0).abs() < 1e-9);
        assert!((r.total_seconds() - 5.0).abs() < 1e-9);
        assert_eq!(r.units, 7);
    }

    #[test]
    fn imbalance_of_even_load_is_one() {
        let mut clocks = SimClocks::new(4);
        for w in 0..4 {
            clocks.charge_compute(w, 2.0);
        }
        let r = ParallelReport::from_clocks(
            "t",
            4,
            vec![],
            &clocks,
            0.0,
            0.0,
            0.0,
            0,
            CacheStats::default(),
        );
        assert!((r.imbalance() - 1.0).abs() < 1e-9);
    }
}
