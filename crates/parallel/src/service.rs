//! The standing-violation service: a long-lived, epoch-pinned
//! edit-stream engine over the incremental detection stack.
//!
//! The one-shot stack (delta → space repair → detector → workload)
//! answers "what does this edit change?" per call. A deployment where
//! every user action is an edit needs the *standing* shape of
//! Berkholz/Keppeler/Schweikardt's FO+MOD maintenance under updates:
//! ingest a stream of edit batches, keep `Vio(Σ, G)` current with
//! bounded per-update work, and push *changes* (added / retracted
//! violations) to subscribers. [`ViolationService`] is that engine,
//! built robust by construction:
//!
//! * **Batch compaction** — a batch of per-edit [`GraphDelta`]s folds
//!   into one normalized delta ([`GraphDelta::merge`]): opposing ops
//!   cancel before any repair work happens, and re-enumerations
//!   pinned at nodes touched by several edits of the batch run once
//!   (the detector sees each affected node once per epoch).
//! * **Epoch/snapshot pinning** — each committed batch is an epoch.
//!   Readers pin the current [`Arc<Graph>`] ([`ViolationService::
//!   snapshot`]) and keep serving it while the next batch applies;
//!   commits swap the Arc, never mutate. The [`EditLog`] records each
//!   epoch's compacted delta, so the current snapshot rebuilds from
//!   **any** live pinned epoch by replaying the suffix
//!   ([`EditLog::replay_onto`]); the log is bounded by pin-gated
//!   compaction (epochs no live pin can replay from are dropped).
//! * **Durability** — with [`ViolationService::with_durable_log`] every
//!   committed epoch is also appended to an on-disk write-ahead log
//!   ([`crate::wal`]) as a checksummed frame, fsynced per
//!   [`crate::wal::SyncPolicy`]; [`ViolationService::recover`]
//!   restarts a crashed service from that file, truncating torn or
//!   corrupt tails and replaying every surviving epoch.
//! * **Ingest validation** — a malformed batch (out-of-range node
//!   ids, phantom edge removals, stale labels …) is rejected with an
//!   [`IngestError`] *before* anything is touched: no epoch, no log
//!   entry, no detector work.
//! * **Self-healing repair** — the incremental repair runs under
//!   `catch_unwind`; a panic (or a divergence caught by the sampled
//!   per-epoch invariant check, [`IncrementalDetector::verify_rule`]
//!   on a seed-chosen rule) triggers graceful degradation: a full
//!   recompute on panic-isolated workers
//!   ([`run_units_threaded_report`]), quarantined units recovered by
//!   sequential re-derivation of their rules, and incremental
//!   maintenance resumed from the recomputed truth
//!   ([`IncrementalDetector::from_violations`]). The service logs the
//!   event ([`ServiceStats`]) and keeps serving — it degrades, it
//!   does not die.
//! * **No torn epochs** — subscribers receive one [`VioUpdate`] per
//!   committed epoch, after commit, with strictly consecutive epoch
//!   numbers; folding the updates over the epoch-0 baseline always
//!   reproduces the service's absolute violation set.

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::{mpsc, Arc, Weak};

use gfd_core::validate::{detect_violations, for_each_violation};
use gfd_core::{GfdSet, IncrementalDetector, Violation};
use gfd_graph::{DeltaError, Graph, GraphDelta};
use gfd_match::types::Flow;
use gfd_match::{Match, MatchOptions};
use gfd_util::Rng;

use gfd_match::{CacheStats, ClassRegistry};

use crate::fault::FaultPlan;
use crate::threaded::run_units_threaded_report;
use crate::unitexec::sort_violations;
use crate::wal::{self, RecoveryReport, SyncPolicy, WalError, WalWriter};
use crate::workload::{estimate_workload_in, plan_rules, WorkloadOptions};

/// A reader's pinned epoch: the epoch number and the frozen snapshot
/// it refers to. Holding one keeps the snapshot alive (it is an
/// `Arc`); the service never mutates committed snapshots, so a pin
/// stays valid and consistent forever — and doubles as a replay base
/// for [`EditLog::replay_onto`].
#[derive(Clone, Debug)]
pub struct PinnedEpoch {
    /// The pinned epoch number (0 = the service's initial snapshot).
    pub epoch: u64,
    /// The snapshot as of that epoch.
    pub graph: Arc<Graph>,
}

/// One committed epoch's record in the [`EditLog`].
#[derive(Clone, Debug)]
pub struct LogEntry {
    /// The epoch this entry produced (entry takes epoch-1 → epoch).
    pub epoch: u64,
    /// The batch's compacted, normalized delta.
    pub delta: GraphDelta,
}

/// The per-epoch delta log: entry `e` records the compacted delta
/// that took snapshot `e-1` to snapshot `e`. Together with any
/// [`PinnedEpoch`] it reconstructs any later snapshot.
///
/// The log is **bounded**: after each commit the service drops every
/// entry at or below the oldest *live* pin (entries only a dropped pin
/// could replay from serve nobody). [`compacted_to`](EditLog::compacted_to)
/// is the resulting replay floor; durability past that floor is the
/// on-disk write-ahead log's job ([`crate::wal`]).
#[derive(Debug, Default)]
pub struct EditLog {
    entries: Vec<LogEntry>,
    /// Epochs `<= compacted_to` have been dropped from memory.
    compacted_to: u64,
}

impl EditLog {
    /// All retained entries, in epoch order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// The replay floor: entries at or below this epoch were compacted
    /// away. Replay is only possible from pins at or past the floor.
    pub fn compacted_to(&self) -> u64 {
        self.compacted_to
    }

    /// Entries currently held in memory.
    pub fn retained(&self) -> usize {
        self.entries.len()
    }

    /// Drops every entry at or below `epoch`, returning how many were
    /// dropped. Called by the service with the oldest live pin's epoch.
    fn compact_to(&mut self, epoch: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.epoch > epoch);
        self.compacted_to = self.compacted_to.max(epoch);
        before - self.entries.len()
    }

    /// The net delta from `epoch` to the log head, folded into one
    /// normalized delta ([`GraphDelta::merge`]); `None` if the log
    /// has no entries past `epoch`.
    ///
    /// # Panics
    ///
    /// If `epoch` predates the compaction floor — the entries needed
    /// to replay from there no longer exist, so any answer would be
    /// silently wrong.
    pub fn delta_since(&self, epoch: u64) -> Option<GraphDelta> {
        assert!(
            epoch >= self.compacted_to,
            "replay from epoch {epoch} impossible: the log is compacted to {}",
            self.compacted_to
        );
        self.entries
            .iter()
            .filter(|e| e.epoch > epoch)
            .map(|e| e.delta.clone())
            .reduce(|a, b| a.merge(b))
    }

    /// Replays the log suffix onto a pinned epoch, reconstructing the
    /// snapshot at the log head — one compacted [`Graph::apply_delta`]
    /// patch, however many epochs the pin is behind.
    pub fn replay_onto(&self, pin: &PinnedEpoch) -> Arc<Graph> {
        match self.delta_since(pin.epoch) {
            Some(net) => Arc::new(pin.graph.apply_delta(&net)),
            None => Arc::clone(&pin.graph),
        }
    }
}

/// Why a batch was rejected. Rejection is total: the epoch, the log,
/// the detector and every subscriber are untouched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// A delta inside the batch failed structural validation (id
    /// ranges, density, chaining onto its predecessor).
    MalformedDelta {
        /// Index of the offending delta within the batch.
        index: usize,
        /// What was wrong with it.
        error: DeltaError,
    },
    /// The compacted batch contradicts the current snapshot (adding a
    /// present edge, removing an absent one, a stale label change).
    MalformedBatch {
        /// What was wrong with it.
        error: DeltaError,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::MalformedDelta { index, error } => {
                write!(f, "batch delta #{index} malformed: {error}")
            }
            IngestError::MalformedBatch { error } => {
                write!(f, "compacted batch contradicts snapshot: {error}")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// The per-epoch change pushed to subscribers: added and retracted
/// violations, both canonically sorted. Epoch numbers on one
/// subscription are strictly consecutive — a gap or repeat would mean
/// a torn epoch, and the soak test asserts neither ever happens.
#[derive(Clone, Debug)]
pub struct VioUpdate {
    /// The epoch this update commits.
    pub epoch: u64,
    /// Violations that appeared at this epoch.
    pub added: Vec<Violation>,
    /// Violations that disappeared at this epoch.
    pub retracted: Vec<Violation>,
    /// True if the epoch was served by the degradation path (full
    /// recompute) instead of incremental repair.
    pub degraded: bool,
}

/// Service tuning; [`Default`] is production-shaped (no fault
/// injection, light oracle sampling).
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// OS threads for degraded-path recomputes.
    pub threads: usize,
    /// Per-epoch probability of running the sampled repair-invariant
    /// oracle (one random rule re-derived from scratch and compared).
    pub oracle_sample_p: f64,
    /// Seed for the service's deterministic sampling stream.
    pub seed: u64,
    /// Fault injection plan (soak harness only; `None` in production).
    pub faults: Option<FaultPlan>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            threads: 4,
            oracle_sample_p: 0.02,
            seed: 0x5EED_5EED,
            faults: None,
        }
    }
}

/// Operational counters: every failure the service absorbed is
/// visible here — nothing is swallowed silently.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Epochs committed (current epoch number).
    pub epochs: u64,
    /// Individual edit deltas accepted (before compaction).
    pub edits_ingested: u64,
    /// Batches rejected at ingest validation.
    pub batches_rejected: u64,
    /// Incremental-repair panics caught.
    pub repair_panics: u64,
    /// Sampled invariant checks run.
    pub oracle_checks: u64,
    /// Divergences the sampled oracle caught.
    pub divergences_detected: u64,
    /// Epochs served via the full-recompute degradation path.
    pub degraded_epochs: u64,
    /// Worker panics caught during degraded recomputes.
    pub unit_panics: u64,
    /// Units that succeeded after panicked attempts.
    pub units_retried: u64,
    /// Units quarantined (and then recovered sequentially).
    pub units_quarantined: u64,
    /// Entries currently retained by the in-memory [`EditLog`] (the
    /// epochs newer than the oldest live pin).
    pub retained_epochs: u64,
    /// Entries dropped from the in-memory log by pin-gated compaction.
    pub log_compacted_epochs: u64,
    /// Frames written to the durable log (snapshot frame included);
    /// zero for an in-memory-only service.
    pub log_frames: u64,
    /// fsyncs issued by the durable log.
    pub log_fsyncs: u64,
    /// Durable-log append/sync failures absorbed. A failed append
    /// drops the service to in-memory-only operation (it keeps
    /// serving; durability is gone until re-created) — this counter
    /// is how that degradation stays visible.
    pub log_write_errors: u64,
    /// This tenant's registry probe counters (degraded recomputes run
    /// through the shared [`ClassRegistry`]; several services over one
    /// registry each see only their own share here, while
    /// [`ClassRegistry::stats`] totals all tenants).
    pub cache: CacheStats,
}

/// The long-lived standing-violation engine; see the module docs.
pub struct ViolationService {
    sigma: GfdSet,
    current: Arc<Graph>,
    epoch: u64,
    /// The serving-tier cache this service's detector and degraded
    /// recomputes read through — possibly shared with other tenants.
    registry: Arc<ClassRegistry>,
    detector: IncrementalDetector,
    /// Mirror of the set subscribers hold (the fold of all updates
    /// sent so far over the baseline). Kept service-side so the
    /// degradation path can emit an exact diff even when the
    /// detector's state was lost to a panic.
    served: HashSet<(usize, Match)>,
    log: EditLog,
    /// The durable write-ahead log, if the service was constructed
    /// with one ([`with_durable_log`](Self::with_durable_log) /
    /// [`recover`](Self::recover)).
    wal: Option<WalWriter>,
    /// Epochs handed out by [`snapshot`](Self::snapshot), held weakly:
    /// a pin's epoch gates log compaction only while the caller still
    /// holds the `Arc`. `RefCell` because pinning is a `&self`
    /// operation (readers pin concurrently with serving).
    pins: RefCell<Vec<(u64, Weak<Graph>)>>,
    subscribers: Vec<mpsc::Sender<VioUpdate>>,
    rng: Rng,
    cfg: ServiceConfig,
    stats: ServiceStats,
}

impl ViolationService {
    /// Starts the service on a snapshot: one full detection pass
    /// establishes the epoch-0 baseline, over a private registry.
    pub fn new(sigma: GfdSet, g: Arc<Graph>, cfg: ServiceConfig) -> Self {
        Self::with_registry(sigma, g, cfg, Arc::new(ClassRegistry::new()))
    }

    /// Multi-tenant construction: starts the service over a **shared**
    /// [`ClassRegistry`]. N services (plus threaded executors and
    /// workload maintainers) can serve off one registry — simulations,
    /// plans and pinned match tables are paid once across all of them,
    /// under the registry's single byte budget. Tenants sharing a
    /// registry must ingest the same edit stream (the registry repairs
    /// once per epoch and replays recorded change flags to laggards).
    pub fn with_registry(
        sigma: GfdSet,
        g: Arc<Graph>,
        cfg: ServiceConfig,
        registry: Arc<ClassRegistry>,
    ) -> Self {
        let detector = IncrementalDetector::with_registry(&sigma, &g, Arc::clone(&registry));
        let served = detector
            .violations()
            .into_iter()
            .map(|v| (v.rule, v.mapping))
            .collect();
        let rng = Rng::seed_from_u64(cfg.seed);
        ViolationService {
            sigma,
            current: g,
            epoch: 0,
            registry,
            detector,
            served,
            log: EditLog::default(),
            wal: None,
            pins: RefCell::new(Vec::new()),
            subscribers: Vec::new(),
            rng,
            cfg,
            stats: ServiceStats::default(),
        }
    }

    /// Starts the service with a **durable** write-ahead log at
    /// `path` (truncating any previous file there): the epoch-0
    /// snapshot is written and fsynced immediately, and every
    /// committed epoch is appended as a checksummed frame, forced to
    /// stable storage per `policy`. After a crash,
    /// [`recover`](Self::recover) rebuilds the service from this file.
    pub fn with_durable_log(
        sigma: GfdSet,
        g: Arc<Graph>,
        cfg: ServiceConfig,
        path: &Path,
        policy: SyncPolicy,
    ) -> Result<Self, WalError> {
        let mut svc = Self::new(sigma, g, cfg);
        let writer = WalWriter::create(path, 0, &svc.current, policy)?;
        svc.stats.log_frames = writer.frames();
        svc.stats.log_fsyncs = writer.fsyncs();
        svc.wal = Some(writer);
        Ok(svc)
    }

    /// Restarts a crashed service from its durable log: replays every
    /// intact epoch onto the base snapshot (truncating the file at the
    /// first torn or corrupt frame — hostile bytes degrade recovery,
    /// they never panic it), re-derives `Vio(Σ, G)` on the recovered
    /// snapshot, re-seeds the incremental detector from that truth
    /// ([`IncrementalDetector::from_violations`]' registry-shared
    /// variant), and resumes ingest at the recovered epoch. The
    /// [`RecoveryReport`] accounts for every replayed epoch and every
    /// truncated frame.
    pub fn recover(
        sigma: GfdSet,
        path: &Path,
        cfg: ServiceConfig,
        policy: SyncPolicy,
    ) -> Result<(Self, RecoveryReport), WalError> {
        Self::recover_in(sigma, path, cfg, policy, Arc::new(ClassRegistry::new()))
    }

    /// [`recover`](Self::recover) onto a shared [`ClassRegistry`]
    /// (the multi-tenant counterpart of
    /// [`with_registry`](Self::with_registry)).
    pub fn recover_in(
        sigma: GfdSet,
        path: &Path,
        cfg: ServiceConfig,
        policy: SyncPolicy,
        registry: Arc<ClassRegistry>,
    ) -> Result<(Self, RecoveryReport), WalError> {
        // Replay into the rule set's own vocabulary so the recovered
        // graph and Σ's patterns share one `Vocab` by `Arc` identity
        // (the matcher insists on it). An empty Σ constrains nothing —
        // any fresh vocabulary serves.
        let (g, writer, report) = match sigma.iter().next().map(|gfd| gfd.pattern.vocab()) {
            Some(v) => wal::recover_in(path, policy, v)?,
            None => wal::recover(path, policy)?,
        };
        let g = Arc::new(g);
        let mut violations = detect_violations(&sigma, &g);
        sort_violations(&mut violations);
        let detector =
            IncrementalDetector::from_violations_in(&sigma, &violations, Arc::clone(&registry));
        let served = violations
            .into_iter()
            .map(|v| (v.rule, v.mapping))
            .collect();
        let rng = Rng::seed_from_u64(cfg.seed);
        let epoch = report.recovered_epoch;
        let svc = ViolationService {
            sigma,
            current: g,
            epoch,
            registry,
            detector,
            served,
            // The in-memory log restarts empty with its floor at the
            // recovered epoch: pre-crash epochs are replayable from
            // disk, not from memory.
            log: EditLog {
                entries: Vec::new(),
                compacted_to: epoch,
            },
            stats: ServiceStats {
                epochs: epoch,
                log_frames: writer.frames(),
                log_fsyncs: writer.fsyncs(),
                ..ServiceStats::default()
            },
            wal: Some(writer),
            pins: RefCell::new(Vec::new()),
            subscribers: Vec::new(),
            rng,
            cfg,
        };
        Ok((svc, report))
    }

    /// Pins the current epoch: the returned snapshot stays valid and
    /// immutable while later batches commit. While the pin is held (its
    /// `Arc` alive), the in-memory [`EditLog`] retains every epoch the
    /// pin might replay through; dropping the pin releases them for
    /// compaction at the next commit.
    pub fn snapshot(&self) -> PinnedEpoch {
        let mut pins = self.pins.borrow_mut();
        // Keep the registry bounded even on read-heavy, commit-light
        // workloads: dead pins are also pruned here, not just at commit.
        pins.retain(|(_, w)| w.strong_count() > 0);
        pins.push((self.epoch, Arc::downgrade(&self.current)));
        drop(pins);
        PinnedEpoch {
            epoch: self.epoch,
            graph: Arc::clone(&self.current),
        }
    }

    /// The current absolute violation set, canonically sorted (the
    /// fold of every update over the baseline).
    pub fn violations(&self) -> Vec<Violation> {
        let mut out: Vec<Violation> = self
            .served
            .iter()
            .map(|(rule, m)| Violation {
                rule: *rule,
                mapping: m.clone(),
            })
            .collect();
        sort_violations(&mut out);
        out
    }

    /// Registers a subscriber. The receiver sees one [`VioUpdate`]
    /// per epoch committed *after* this call, in epoch order with no
    /// gaps; its baseline is [`violations`](Self::violations) /
    /// [`snapshot`](Self::snapshot) as of now. Dropped receivers are
    /// pruned on the next commit.
    pub fn subscribe(&mut self) -> mpsc::Receiver<VioUpdate> {
        let (tx, rx) = mpsc::channel();
        self.subscribers.push(tx);
        rx
    }

    /// Operational counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// The per-epoch delta log.
    pub fn log(&self) -> &EditLog {
        &self.log
    }

    /// The durable write-ahead log, if this service has one.
    pub fn durable_log(&self) -> Option<&WalWriter> {
        self.wal.as_ref()
    }

    /// Forces every committed epoch onto stable storage now —
    /// subscriber-demand durability for [`SyncPolicy::EveryN`] /
    /// [`SyncPolicy::OnDemand`] services. A no-op without a durable
    /// log; an fsync failure drops the service to in-memory operation
    /// (counted in [`ServiceStats::log_write_errors`]) and is
    /// returned.
    pub fn flush_log(&mut self) -> Result<(), WalError> {
        if let Some(w) = self.wal.as_mut() {
            match w.sync() {
                Ok(()) => self.stats.log_fsyncs = w.fsyncs(),
                Err(e) => {
                    self.stats.log_write_errors += 1;
                    self.wal = None;
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// The rule set the service maintains.
    pub fn sigma(&self) -> &GfdSet {
        &self.sigma
    }

    /// Ingests one batch of edit deltas (delta `i+1` based on the
    /// result of delta `i`, the chain [`Graph::edit_with_delta`]
    /// sessions produce). On success the batch commits as one epoch:
    /// compaction → CSR patch → repair (or degradation) → log append
    /// → subscriber updates; returns the committed epoch. On
    /// rejection **nothing** changed.
    pub fn ingest(&mut self, batch: &[GraphDelta]) -> Result<u64, IngestError> {
        // 1. Validate structurally + fold the batch into one delta.
        //    Hostile ids must be caught BEFORE normalize/merge (their
        //    added-node folding indexes by id), so each delta's id
        //    ranges are checked against the running node count first.
        let mut expected_base = self.current.node_count();
        let mut compacted: Option<GraphDelta> = None;
        for (index, delta) in batch.iter().enumerate() {
            if let Err(error) = delta.check_ids(expected_base) {
                self.stats.batches_rejected += 1;
                return Err(IngestError::MalformedDelta { index, error });
            }
            expected_base += delta.added_nodes.len();
            compacted = Some(match compacted.take() {
                None => delta.clone().normalize(),
                Some(prev) => prev.merge(delta.clone()),
            });
        }
        let compacted = compacted.unwrap_or_else(|| GraphDelta::new(self.current.node_count()));

        // 2. Semantic validation of the net delta against the pinned
        //    current snapshot; rejection leaves the epoch untouched.
        if let Err(error) = compacted.check_against(&self.current) {
            self.stats.batches_rejected += 1;
            return Err(IngestError::MalformedBatch { error });
        }

        // 3. Build the successor snapshot. Readers holding the old
        //    Arc keep serving it — commit is a pointer swap at the
        //    end, never an in-place mutation.
        let next_epoch = self.epoch + 1;
        let next = if compacted.is_empty() {
            Arc::clone(&self.current)
        } else {
            Arc::new(self.current.apply_delta(&compacted))
        };

        // 4. Repair under catch_unwind. A panic here (injected or
        //    real) must not take the service down: the detector state
        //    is considered lost and the epoch degrades.
        let faults = self.cfg.faults.clone();
        let injected_repair_panic = faults.as_ref().is_some_and(|f| f.repair_panics(next_epoch));
        let repair = {
            let detector = &mut self.detector;
            let (g, d) = (&next, &compacted);
            panic::catch_unwind(AssertUnwindSafe(move || {
                if injected_repair_panic {
                    panic!("injected repair fault (epoch {next_epoch})");
                }
                detector.apply_diff(g, d)
            }))
        };

        let (added, retracted, degraded) = match repair {
            Ok(diff) => {
                // Fault injection: model repair-invariant drift, then
                // point the sampled oracle at the drifted rule — the
                // harness pairs them so every injected drift is
                // caught, degraded around, and healed (an UNdetected
                // drift would simply be wrong, which is exactly what
                // the sampling trade-off accepts at its cadence).
                let drifted = match &faults {
                    Some(f) if !self.sigma.is_empty() && f.drifts(next_epoch) => {
                        let rule = self.rng.gen_range(0..self.sigma.len());
                        self.detector.inject_drift(rule);
                        Some(rule)
                    }
                    _ => None,
                };
                let check_rule = drifted.or_else(|| {
                    (!self.sigma.is_empty() && self.rng.next_f64() < self.cfg.oracle_sample_p)
                        .then(|| self.rng.gen_range(0..self.sigma.len()))
                });
                let diverged = match check_rule {
                    Some(rule) => {
                        self.stats.oracle_checks += 1;
                        let ok = self.detector.verify_rule(rule, &next);
                        if !ok {
                            self.stats.divergences_detected += 1;
                        }
                        !ok
                    }
                    None => false,
                };
                if diverged {
                    let (a, r) = self.degraded_refresh(&next, next_epoch);
                    (a, r, true)
                } else {
                    let mut added = diff.added;
                    let mut retracted = diff.retracted;
                    sort_violations(&mut added);
                    sort_violations(&mut retracted);
                    for v in &retracted {
                        self.served.remove(&(v.rule, v.mapping.clone()));
                    }
                    for v in &added {
                        self.served.insert((v.rule, v.mapping.clone()));
                    }
                    (added, retracted, false)
                }
            }
            Err(_) => {
                self.stats.repair_panics += 1;
                let (a, r) = self.degraded_refresh(&next, next_epoch);
                (a, r, true)
            }
        };

        // 5. Commit: swap the snapshot, append the log entry (durable
        //    first, then in-memory), then — and only then — publish.
        //    Subscribers can never observe a half-applied epoch
        //    because nothing is published until every service
        //    structure agrees on `next_epoch`.
        self.epoch = next_epoch;
        self.current = next;
        self.stats.epochs = next_epoch;
        self.stats.edits_ingested += batch.len() as u64;
        if let Some(w) = self.wal.as_mut() {
            match w.append(next_epoch, &compacted, self.current.vocab()) {
                Ok(()) => {
                    self.stats.log_frames = w.frames();
                    self.stats.log_fsyncs = w.fsyncs();
                }
                Err(_) => {
                    // Serving beats durability: a failed append (disk
                    // full, I/O error) drops the service to in-memory
                    // operation — visibly, via the stats counter — and
                    // the epoch still commits.
                    self.stats.log_write_errors += 1;
                    self.wal = None;
                }
            }
        }
        self.log.entries.push(LogEntry {
            epoch: next_epoch,
            delta: compacted,
        });
        // Pin-gated compaction: entries only dropped pins could replay
        // from serve nobody; release them. Live pins (weak upgradable)
        // hold their suffix in place.
        {
            let mut pins = self.pins.borrow_mut();
            pins.retain(|(_, w)| w.strong_count() > 0);
            let floor = pins
                .iter()
                .map(|&(epoch, _)| epoch)
                .min()
                .unwrap_or(next_epoch);
            drop(pins);
            self.stats.log_compacted_epochs += self.log.compact_to(floor) as u64;
            self.stats.retained_epochs = self.log.retained() as u64;
        }
        let update = VioUpdate {
            epoch: next_epoch,
            added,
            retracted,
            degraded,
        };
        self.subscribers
            .retain(|tx| tx.send(update.clone()).is_ok());
        Ok(next_epoch)
    }

    /// Graceful degradation: recompute `Vio(Σ, G)` from scratch on
    /// panic-isolated workers, recover quarantined units by
    /// re-deriving their rules sequentially (quarantine is *reported
    /// work*, never lost work), diff against the served set, and
    /// re-seed the incremental detector from the recomputed truth.
    fn degraded_refresh(
        &mut self,
        next: &Arc<Graph>,
        next_epoch: u64,
    ) -> (Vec<Violation>, Vec<Violation>) {
        self.stats.degraded_epochs += 1;
        // The repair that just failed (or drifted) may have torn the
        // registry's incremental state mid-update: drop every cached
        // artifact so the recompute — and every later query — derives
        // from the recovered snapshot. Sound for co-tenants too (the
        // caches are pure derivations; they re-simulate lazily).
        self.registry.invalidate_all();
        let plans = plan_rules(&self.sigma);
        let wl = estimate_workload_in(
            &self.sigma,
            next,
            &WorkloadOptions::default(),
            &self.registry,
        );
        let report = run_units_threaded_report(
            next,
            &self.sigma,
            &plans,
            &wl.units,
            &wl.slots,
            &self.registry,
            self.cfg.threads,
            self.cfg.faults.as_ref(),
            next_epoch,
        );
        self.stats.unit_panics += report.unit_panics;
        self.stats.units_retried += report.units_retried;
        self.stats.units_quarantined += report.quarantined.len() as u64;
        self.stats.cache += report.cache;

        let mut violations = report.violations;
        if !report.quarantined.is_empty() {
            // Every quarantined unit's rule is re-derived from scratch
            // on the coordinator — outside the unit machinery, so an
            // injected per-unit fault cannot recur here. Drop the
            // affected rules' partial results first: other units of
            // the same rule completed fine, but re-derivation covers
            // the whole rule, so keeping them would duplicate rows.
            let mut rules: Vec<usize> = report
                .quarantined
                .iter()
                .map(|&i| wl.units[i].rule())
                .collect();
            rules.sort_unstable();
            rules.dedup();
            violations.retain(|v| rules.binary_search(&v.rule).is_err());
            for &rule in &rules {
                let gfd = self.sigma.get(rule);
                for_each_violation(gfd, next, &MatchOptions::unrestricted(), &mut |m| {
                    violations.push(Violation {
                        rule,
                        mapping: Match(m.to_vec()),
                    });
                    Flow::Continue
                });
            }
            sort_violations(&mut violations);
        }

        let new_set: HashSet<(usize, Match)> = violations
            .iter()
            .map(|v| (v.rule, v.mapping.clone()))
            .collect();
        let mut added: Vec<Violation> = new_set
            .difference(&self.served)
            .map(|(rule, m)| Violation {
                rule: *rule,
                mapping: m.clone(),
            })
            .collect();
        let mut retracted: Vec<Violation> = self
            .served
            .difference(&new_set)
            .map(|(rule, m)| Violation {
                rule: *rule,
                mapping: m.clone(),
            })
            .collect();
        sort_violations(&mut added);
        sort_violations(&mut retracted);
        self.served = new_set;
        self.detector = IncrementalDetector::from_violations_in(
            &self.sigma,
            &violations,
            Arc::clone(&self.registry),
        );
        (added, retracted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::silence_injected_panics;
    use gfd_core::validate::detect_violations;
    use gfd_core::{Dependency, Gfd, Literal};
    use gfd_graph::{GraphBuilder, NodeId, Value, Vocab};
    use gfd_pattern::PatternBuilder;

    fn social(n: usize) -> Graph {
        let mut g = GraphBuilder::with_fresh_vocab();
        let blogs: Vec<_> = (0..n)
            .map(|i| {
                let b = g.add_node_labeled("blog");
                g.set_attr_named(
                    b,
                    "keyword",
                    Value::str(if i % 3 == 0 { "spam" } else { "ok" }),
                );
                b
            })
            .collect();
        for i in 0..n {
            let a = g.add_node_labeled("account");
            g.set_attr_named(a, "is_fake", Value::Bool(i % 4 == 0));
            g.add_edge_labeled(a, blogs[i], "post");
            g.add_edge_labeled(a, blogs[(i + 1) % n], "like");
        }
        g.freeze()
    }

    fn spam_rule(vocab: Arc<Vocab>) -> Gfd {
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "account");
        let y = b.node("y", "blog");
        b.edge(x, y, "post");
        let q = b.build();
        let keyword = vocab.intern("keyword");
        let is_fake = vocab.intern("is_fake");
        Gfd::new(
            "spam-poster-is-fake",
            q,
            Dependency::new(
                vec![Literal::const_eq(y, keyword, "spam")],
                vec![Literal::const_eq(x, is_fake, true)],
            ),
        )
    }

    fn scratch(sigma: &GfdSet, g: &Graph) -> Vec<Violation> {
        let mut v = detect_violations(sigma, g);
        sort_violations(&mut v);
        v
    }

    fn graphs_equal(a: &Graph, b: &Graph) -> bool {
        a.node_count() == b.node_count()
            && a.edge_count() == b.edge_count()
            && a.nodes().all(|u| {
                a.label(u) == b.label(u)
                    && a.attrs(u) == b.attrs(u)
                    && a.out_slice(u) == b.out_slice(u)
                    && a.in_slice(u) == b.in_slice(u)
            })
    }

    /// One batch of chained edit deltas on the shadow snapshot, biased
    /// toward toggling a small slot pool so batches carry opposing ops
    /// for compaction to cancel.
    fn random_batch(rng: &mut Rng, g: &Graph, len: usize) -> (Graph, Vec<GraphDelta>) {
        let mut cur = g.edit(|_| {});
        let mut deltas = Vec::with_capacity(len);
        for _ in 0..len {
            let n = cur.node_count();
            let s = NodeId(rng.gen_range(0..n) as u32);
            let d = NodeId(rng.gen_range(0..n) as u32);
            let kind = rng.gen_range(0..4);
            let spam = rng.gen_bool(0.5);
            let fake = rng.gen_bool(0.5);
            let (next, delta) = cur.edit_with_delta(|b| match kind {
                0 => {
                    b.add_edge_labeled(s, d, "post");
                }
                1 => {
                    b.remove_edge_labeled(s, d, "post");
                }
                2 => {
                    let a = b.vocab().intern("keyword");
                    b.set_attr(s, a, Value::str(if spam { "spam" } else { "ok" }));
                }
                _ => {
                    let a = b.vocab().intern("is_fake");
                    b.set_attr(s, a, Value::Bool(fake));
                }
            });
            cur = next;
            deltas.push(delta);
        }
        (cur, deltas)
    }

    fn service(n: usize, cfg: ServiceConfig) -> (Arc<Graph>, ViolationService) {
        let g = Arc::new(social(n));
        let sigma = GfdSet::new(vec![spam_rule(g.vocab().clone())]);
        let svc = ViolationService::new(sigma, Arc::clone(&g), cfg);
        (g, svc)
    }

    #[test]
    fn epoch_pins_survive_commits_and_the_log_replays_them_forward() {
        let (g0, mut svc) = service(12, ServiceConfig::default());
        let pin0 = svc.snapshot();
        assert_eq!(pin0.epoch, 0);
        assert_eq!(svc.violations(), scratch(svc.sigma(), &g0));

        let mut rng = Rng::seed_from_u64(11);
        let mut shadow = g0.edit(|_| {});
        let mut mid_pin = None;
        for round in 0..6u64 {
            let (next, batch) = random_batch(&mut rng, &shadow, 1 + (round as usize % 3));
            shadow = next;
            let epoch = svc
                .ingest(&batch)
                .expect("recorded batches are well-formed");
            assert_eq!(epoch, round + 1, "epochs must be consecutive");
            assert_eq!(
                svc.violations(),
                scratch(svc.sigma(), &shadow),
                "epoch {epoch} diverges from scratch detection"
            );
            if round == 2 {
                mid_pin = Some(svc.snapshot());
            }
        }

        // An empty batch still commits a (trivial) epoch.
        assert_eq!(svc.ingest(&[]).unwrap(), 7);

        // The epoch-0 pin still addresses the original snapshot, and
        // replay from either pin reconstructs the head exactly.
        assert!(Arc::ptr_eq(&pin0.graph, &g0), "pinned snapshot was swapped");
        for pin in [&pin0, mid_pin.as_ref().unwrap()] {
            let replayed = svc.log().replay_onto(pin);
            assert!(
                graphs_equal(&replayed, &shadow),
                "replay from epoch {} diverges from the head snapshot",
                pin.epoch
            );
        }
        assert_eq!(svc.stats().epochs, 7);
        assert_eq!(svc.log().entries().len(), 7);
    }

    #[test]
    fn malformed_batches_are_rejected_with_the_epoch_untouched() {
        let (g0, mut svc) = service(9, ServiceConfig::default());
        let before = svc.violations();

        // Structurally hostile: an attr write on a node id far out of
        // range (would panic normalize/merge if it got that far).
        let mut bad = GraphDelta::new(g0.node_count());
        bad.attr_ops.push(gfd_graph::AttrOp {
            node: NodeId(g0.node_count() as u32 + 40),
            attr: gfd_graph::Sym(0),
            value: None,
        });
        assert!(matches!(
            svc.ingest(&[bad]).unwrap_err(),
            IngestError::MalformedDelta { index: 0, .. }
        ));

        // Chaining violation mid-batch: the second delta claims a base
        // the first delta's result does not have.
        let ok = GraphDelta::new(g0.node_count());
        let wrong_base = GraphDelta::new(g0.node_count() + 5);
        assert!(matches!(
            svc.ingest(&[ok, wrong_base]).unwrap_err(),
            IngestError::MalformedDelta { index: 1, .. }
        ));

        // Semantically hostile: removing an edge the snapshot does not
        // have (blogs have no "post" out-edges).
        let post = g0.vocab().lookup("post").expect("post is interned");
        let mut rem = GraphDelta::new(g0.node_count());
        rem.removed_edges.push(gfd_graph::Edge {
            src: NodeId(0),
            dst: NodeId(0),
            label: post,
        });
        assert!(matches!(
            svc.ingest(&[rem]).unwrap_err(),
            IngestError::MalformedBatch { .. }
        ));

        // Rejection is total: no epoch, no log entry, no diff.
        assert_eq!(svc.snapshot().epoch, 0);
        assert!(svc.log().entries().is_empty());
        assert_eq!(svc.violations(), before);
        assert_eq!(svc.stats().batches_rejected, 3);

        // And the service is not wedged: a good batch still commits.
        let (_, batch) = random_batch(&mut Rng::seed_from_u64(4), &g0, 3);
        assert_eq!(svc.ingest(&batch).unwrap(), 1);
    }

    #[test]
    fn subscribers_see_every_epoch_exactly_once_and_fold_to_the_absolute_set() {
        let (g0, mut svc) = service(10, ServiceConfig::default());
        let rx = svc.subscribe();
        let mut folded: HashSet<(usize, Match)> = svc
            .violations()
            .into_iter()
            .map(|v| (v.rule, v.mapping))
            .collect();

        let mut rng = Rng::seed_from_u64(23);
        let mut shadow = g0.edit(|_| {});
        for round in 0..8 {
            if round == 4 {
                // A rejected batch must not leak an update.
                let stale = GraphDelta::new(shadow.node_count() + 1);
                assert!(svc.ingest(&[stale]).is_err());
            }
            let (next, batch) = random_batch(&mut rng, &shadow, 2);
            shadow = next;
            svc.ingest(&batch).unwrap();
        }
        drop(svc);

        let mut expected_epoch = 1;
        for update in rx.iter() {
            assert_eq!(update.epoch, expected_epoch, "torn or skipped epoch");
            expected_epoch += 1;
            for v in &update.retracted {
                assert!(
                    folded.remove(&(v.rule, v.mapping.clone())),
                    "retraction of a violation the subscriber does not hold"
                );
            }
            for v in &update.added {
                assert!(
                    folded.insert((v.rule, v.mapping.clone())),
                    "re-add of a violation the subscriber already holds"
                );
            }
        }
        assert_eq!(expected_epoch, 9, "one update per committed epoch");
        let scratch_set: HashSet<(usize, Match)> = scratch(
            &GfdSet::new(vec![spam_rule(shadow.vocab().clone())]),
            &shadow,
        )
        .into_iter()
        .map(|v| (v.rule, v.mapping))
        .collect();
        assert_eq!(folded, scratch_set, "folded stream diverges from scratch");
    }

    #[test]
    fn repair_panics_degrade_gracefully_and_heal() {
        silence_injected_panics();
        let cfg = ServiceConfig {
            threads: 2,
            faults: Some(FaultPlan {
                seed: 3,
                repair_panic_p: 1.0,
                ..FaultPlan::default()
            }),
            ..ServiceConfig::default()
        };
        let (g0, mut svc) = service(12, cfg);
        let rx = svc.subscribe();
        let mut rng = Rng::seed_from_u64(31);
        let mut shadow = g0.edit(|_| {});
        for _ in 0..4 {
            let (next, batch) = random_batch(&mut rng, &shadow, 2);
            shadow = next;
            svc.ingest(&batch).unwrap();
        }
        assert_eq!(svc.violations(), scratch(svc.sigma(), &shadow));
        assert_eq!(svc.stats().repair_panics, 4);
        assert_eq!(svc.stats().degraded_epochs, 4);
        drop(svc);
        for update in rx.iter() {
            assert!(
                update.degraded,
                "epoch {} hid its degradation",
                update.epoch
            );
        }
    }

    #[test]
    fn injected_drift_is_caught_by_the_sampled_oracle() {
        let cfg = ServiceConfig {
            threads: 2,
            faults: Some(FaultPlan {
                seed: 5,
                drift_p: 1.0,
                ..FaultPlan::default()
            }),
            ..ServiceConfig::default()
        };
        let (g0, mut svc) = service(12, cfg);
        let mut rng = Rng::seed_from_u64(41);
        let mut shadow = g0.edit(|_| {});
        for _ in 0..4 {
            let (next, batch) = random_batch(&mut rng, &shadow, 2);
            shadow = next;
            svc.ingest(&batch).unwrap();
        }
        // Drift perturbs detector state every epoch; the paired oracle
        // must catch it every time, and the degraded recompute must
        // heal the service back to the scratch truth.
        assert_eq!(svc.violations(), scratch(svc.sigma(), &shadow));
        assert_eq!(svc.stats().oracle_checks, 4);
        assert_eq!(svc.stats().divergences_detected, 4);
        assert_eq!(svc.stats().degraded_epochs, 4);
    }

    #[test]
    fn degraded_recompute_recovers_quarantined_units_sequentially() {
        silence_injected_panics();
        let cfg = ServiceConfig {
            threads: 3,
            faults: Some(FaultPlan {
                seed: 9,
                repair_panic_p: 1.0, // force the degradation path...
                unit_panic_p: 0.6,   // ...then fault its workers too
                sticky_p: 0.5,
                ..FaultPlan::default()
            }),
            ..ServiceConfig::default()
        };
        let (g0, mut svc) = service(15, cfg);
        let mut rng = Rng::seed_from_u64(51);
        let mut shadow = g0.edit(|_| {});
        for _ in 0..4 {
            let (next, batch) = random_batch(&mut rng, &shadow, 2);
            shadow = next;
            svc.ingest(&batch).unwrap();
        }
        // Quarantined units were recovered sequentially, so the final
        // set is still oracle-identical despite sticky worker faults.
        assert_eq!(svc.violations(), scratch(svc.sigma(), &shadow));
        let stats = svc.stats();
        assert!(stats.unit_panics > 0, "plan injected no worker faults");
        assert!(
            stats.units_quarantined > 0,
            "plan produced no sticky faults; pick a different seed"
        );
    }

    #[test]
    fn pin_gated_compaction_bounds_the_log_and_releases_on_drop() {
        let (g0, mut svc) = service(10, ServiceConfig::default());
        let mut rng = Rng::seed_from_u64(61);
        let mut shadow = g0.edit(|_| {});

        // No pins held: every committed entry is compacted away at the
        // commit that created it.
        for _ in 0..3 {
            let (next, batch) = random_batch(&mut rng, &shadow, 2);
            shadow = next;
            svc.ingest(&batch).unwrap();
        }
        assert_eq!(svc.stats().retained_epochs, 0);
        assert_eq!(svc.stats().log_compacted_epochs, 3);
        assert_eq!(svc.log().compacted_to(), 3);

        // A held pin freezes its suffix in place...
        let pin = svc.snapshot();
        for _ in 0..4 {
            let (next, batch) = random_batch(&mut rng, &shadow, 2);
            shadow = next;
            svc.ingest(&batch).unwrap();
        }
        assert_eq!(svc.stats().retained_epochs, 4);
        let replayed = svc.log().replay_onto(&pin);
        assert!(graphs_equal(&replayed, &shadow), "pinned replay diverged");

        // ...and dropping it releases the suffix at the next commit.
        drop(replayed);
        drop(pin);
        let (next, batch) = random_batch(&mut rng, &shadow, 1);
        shadow = next;
        svc.ingest(&batch).unwrap();
        assert_eq!(svc.stats().retained_epochs, 0);
        assert_eq!(svc.log().compacted_to(), 8);
        assert_eq!(svc.violations(), scratch(svc.sigma(), &shadow));
    }

    #[test]
    #[should_panic(expected = "log is compacted")]
    fn replay_below_the_compaction_floor_panics_loudly() {
        let (g0, mut svc) = service(8, ServiceConfig::default());
        let mut shadow = g0.edit(|_| {});
        // Epoch 1: a real edit, so `current` moves to a fresh Arc the
        // test does not hold.
        let (next, d1) = shadow.edit_with_delta(|b| {
            b.add_edge_labeled(NodeId(0), NodeId(1), "post");
        });
        shadow = next;
        svc.ingest(&[d1]).unwrap();
        let pin = svc.snapshot();
        assert_eq!(pin.epoch, 1);
        // A caller that remembers the epoch but drops the Arc no
        // longer gates compaction — replaying later must fail loudly,
        // not silently skip the compacted entries.
        let remembered_epoch = pin.epoch;
        drop(pin);
        let (_, d2) = shadow.edit_with_delta(|b| {
            b.add_edge_labeled(NodeId(0), NodeId(2), "post");
        });
        svc.ingest(&[d2]).unwrap();
        let stale = PinnedEpoch {
            epoch: remembered_epoch,
            graph: Arc::new(social(2)),
        };
        svc.log().replay_onto(&stale);
    }

    #[test]
    fn durable_service_survives_restart_with_identical_violations() {
        let dir = gfd_util::TempDir::new("gfd-svc-durable").unwrap();
        let path = dir.file("svc.wal");
        let (g0, sigma) = {
            let g = Arc::new(social(12));
            let sigma = GfdSet::new(vec![spam_rule(g.vocab().clone())]);
            (g, sigma)
        };
        let mut svc = ViolationService::with_durable_log(
            sigma.clone(),
            Arc::clone(&g0),
            ServiceConfig::default(),
            &path,
            SyncPolicy::EveryEpoch,
        )
        .unwrap();

        let mut rng = Rng::seed_from_u64(81);
        let mut shadow = g0.edit(|_| {});
        for _ in 0..5 {
            let (next, batch) = random_batch(&mut rng, &shadow, 3);
            shadow = next;
            svc.ingest(&batch).unwrap();
        }
        let live_violations = svc.violations();
        assert_eq!(svc.stats().log_frames, 6, "snapshot + 5 delta frames");
        assert!(svc.durable_log().is_some());
        // "Crash": drop without any shutdown courtesy.
        drop(svc);

        let (mut svc2, report) = ViolationService::recover(
            sigma,
            &path,
            ServiceConfig::default(),
            SyncPolicy::EveryEpoch,
        )
        .unwrap();
        assert_eq!(report.recovered_epoch, 5);
        assert_eq!(report.replayed_epochs, 5);
        assert!(report.corruption.is_none());
        assert_eq!(svc2.snapshot().epoch, 5);
        assert_eq!(svc2.violations(), live_violations);
        assert_eq!(svc2.violations(), scratch(svc2.sigma(), &shadow));

        // The recovered service resumes ingest where the old one died.
        let (next, batch) = random_batch(&mut rng, &shadow, 2);
        shadow = next;
        assert_eq!(svc2.ingest(&batch).unwrap(), 6);
        assert_eq!(svc2.violations(), scratch(svc2.sigma(), &shadow));
    }

    #[test]
    fn on_demand_policy_flushes_on_subscriber_demand() {
        let dir = gfd_util::TempDir::new("gfd-svc-ondemand").unwrap();
        let path = dir.file("svc.wal");
        let g = Arc::new(social(8));
        let sigma = GfdSet::new(vec![spam_rule(g.vocab().clone())]);
        let mut svc = ViolationService::with_durable_log(
            sigma,
            Arc::clone(&g),
            ServiceConfig::default(),
            &path,
            SyncPolicy::OnDemand,
        )
        .unwrap();
        let mut rng = Rng::seed_from_u64(91);
        let mut shadow = g.edit(|_| {});
        for _ in 0..3 {
            let (next, batch) = random_batch(&mut rng, &shadow, 2);
            shadow = next;
            svc.ingest(&batch).unwrap();
        }
        {
            let w = svc.durable_log().unwrap();
            assert_eq!(w.synced_epoch(), 0, "OnDemand must not fsync on its own");
            assert!(w.synced_bytes() < w.bytes());
        }
        svc.flush_log().unwrap();
        let w = svc.durable_log().unwrap();
        assert_eq!(w.synced_epoch(), 3);
        assert_eq!(w.synced_bytes(), w.bytes());
    }
}
