//! Real-thread execution of work units, isolated against panics.
//!
//! The simulated cluster (crate docs) is what the benchmarks report,
//! but the work-unit machinery is genuinely parallel-safe: this module
//! runs units across OS threads (std scoped threads over a shared
//! retry-aware work queue — no external thread-pool dependency),
//! sharing one [`ClassRegistry`] serving tier across all workers (and
//! any other tenants of the same registry), and is used by the test
//! suite to verify that concurrent execution produces exactly the
//! sequential violations.
//!
//! Every worker shares the *same* frozen CSR snapshot through one
//! `Arc<Graph>` — the whole point of the builder/snapshot split: no
//! per-worker graph clone, no synchronization on the read path.
//!
//! ## Panic isolation
//!
//! Each unit executes under [`std::panic::catch_unwind`]. A panic
//! poisons nothing shared: the panicked unit's partial output is
//! truncated, the worker's scratch (whose invariants the unwind may
//! have torn mid-update) is rebuilt — the shared registry needs no
//! rebuild (its lock is never held across enumeration, and a poisoned
//! lock is absorbed) and the worker's cache-stat counters are *kept*,
//! so the merged report never loses probes a later-quarantined worker
//! already paid for — and the unit is
//! **requeued** — any healthy worker picks it up after a bounded
//! backoff. After [`MAX_UNIT_ATTEMPTS`] failed attempts the unit is
//! **quarantined and reported** in the [`ThreadedReport`]; it is never
//! silently dropped, and sibling workers' results always survive. The
//! previous executor joined with a bare `expect`, so one panicking
//! unit aborted the entire run and discarded every other worker's
//! completed work.
//!
//! The optional [`FaultPlan`] injects deterministic panics and
//! stragglers at chosen `(epoch, unit)` coordinates — the soak
//! harness drives this path; production callers pass `None` and pay
//! only the `catch_unwind` frame.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use gfd_core::{GfdSet, Violation};
use gfd_graph::Graph;

use crate::fault::FaultPlan;
use crate::unitexec::{execute_unit, sort_violations, CacheStats, MultiQueryIndex, UnitScratch};
use crate::workload::{PivotedRule, UnitSlot, WorkUnit};
use gfd_match::ClassRegistry;

/// Total attempts a unit gets (1 initial + 2 retries) before it is
/// quarantined.
pub const MAX_UNIT_ATTEMPTS: u32 = 3;

/// Base backoff before re-running a previously panicked unit; attempt
/// `k` waits `k × RETRY_BACKOFF`, so repeated failures of one unit
/// yield the queue to healthy work instead of hot-looping.
const RETRY_BACKOFF: Duration = Duration::from_micros(200);

/// Everything a fault-isolated threaded run reports: the violations
/// of every unit that completed, plus the failure ledger.
#[derive(Debug, Default)]
pub struct ThreadedReport {
    /// Canonically sorted violations from all completed units.
    pub violations: Vec<Violation>,
    /// Worker panics caught (every attempt counts, retries included).
    pub unit_panics: u64,
    /// Units that completed only after ≥ 1 panicked attempt.
    pub units_retried: u64,
    /// Unit indices abandoned after [`MAX_UNIT_ATTEMPTS`] panics,
    /// sorted ascending. Their violations are missing from
    /// [`violations`](ThreadedReport::violations) — the caller must
    /// recover them (re-derive the affected rules) or surface the
    /// gap; the standing-violation service does the former.
    pub quarantined: Vec<usize>,
    /// This run's registry probe counters, summed over every worker —
    /// including workers whose units later panicked or were
    /// quarantined (counters are captured per probe, not per unit, so
    /// fault handling never loses them).
    pub cache: CacheStats,
}

impl ThreadedReport {
    /// Folds the failure counters into a [`ParallelReport`]
    /// (`crate::ParallelReport`), which carries them to the figures
    /// and service dashboards.
    pub fn fold_into(&self, report: &mut crate::ParallelReport) {
        report.unit_panics += self.unit_panics;
        report.units_retried += self.units_retried;
        report.quarantined_units += self.quarantined.len() as u64;
        report.cache_hits += self.cache.hits;
        report.cache_misses += self.cache.misses;
        report.cache_evicted_cold += self.cache.evicted_cold;
        report.cache_evictions_deferred += self.cache.eviction_deferred_pinned;
    }
}

/// Executes all units (descriptors over the `slots` arena) across
/// `threads` OS threads sharing one `Arc<Graph>`, returning the
/// canonical (sorted) violation list.
///
/// Worker panics no longer abort the run: units execute under
/// `catch_unwind` with requeue-and-retry (see the module docs).
/// This convenience wrapper still treats an *exhausted* unit — one
/// that panicked [`MAX_UNIT_ATTEMPTS`] times with no fault plan, i.e.
/// a genuine bug — as fatal, because returning a silently incomplete
/// violation set would be unsound. Callers that want the failure
/// ledger instead use [`run_units_threaded_report`].
pub fn run_units_threaded(
    g: &Arc<Graph>,
    sigma: &GfdSet,
    plans: &[PivotedRule],
    units: &[WorkUnit],
    slots: &[UnitSlot],
    threads: usize,
) -> Vec<Violation> {
    let registry = ClassRegistry::new();
    let report =
        run_units_threaded_report(g, sigma, plans, units, slots, &registry, threads, None, 0);
    assert!(
        report.quarantined.is_empty(),
        "units {:?} panicked {MAX_UNIT_ATTEMPTS} times each — result would be incomplete; \
         use run_units_threaded_report to recover instead of aborting",
        report.quarantined
    );
    report.violations
}

/// The fault-isolated executor behind [`run_units_threaded`]: every
/// unit runs under `catch_unwind`, panicked units are requeued to
/// healthy workers with bounded retries and backoff, exhausted units
/// are quarantined and reported. `faults` (with its `epoch`
/// coordinate) injects deterministic panics/stragglers for the soak
/// harness; pass `None` in production.
#[allow(clippy::too_many_arguments)]
pub fn run_units_threaded_report(
    g: &Arc<Graph>,
    sigma: &GfdSet,
    plans: &[PivotedRule],
    units: &[WorkUnit],
    slots: &[UnitSlot],
    registry: &ClassRegistry,
    threads: usize,
    faults: Option<&FaultPlan>,
    epoch: u64,
) -> ThreadedReport {
    let mqi = MultiQueryIndex::build(plans, registry);
    // (unit index, attempt) queue; requeued entries go to the back so
    // healthy units drain first. Lock holders never panic (pop/push
    // only), so the mutex cannot poison.
    let queue: Mutex<VecDeque<(usize, u32)>> =
        Mutex::new((0..units.len()).map(|i| (i, 0)).collect());
    let outstanding = AtomicUsize::new(units.len());
    let unit_panics = AtomicU64::new(0);
    let units_retried = AtomicU64::new(0);
    let quarantined: Mutex<Vec<usize>> = Mutex::new(Vec::new());

    let per_worker: Vec<(Vec<Violation>, CacheStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.max(1))
            .map(|_| {
                let g = Arc::clone(g);
                let (queue, outstanding) = (&queue, &outstanding);
                let (unit_panics, units_retried, quarantined) =
                    (&unit_panics, &units_retried, &quarantined);
                let mqi = &mqi;
                scope.spawn(move || {
                    let mut stats = CacheStats::default();
                    let mut scratch = UnitScratch::new();
                    let mut out: Vec<Violation> = Vec::new();
                    loop {
                        // Invariant behind every "never poisoned" here:
                        // the locks are held only across pop/push (which
                        // do not panic) and unit execution runs under
                        // catch_unwind with no lock held, so no worker
                        // can die while holding a guard.
                        let item = queue.lock().expect("never poisoned").pop_front();
                        let Some((i, attempt)) = item else {
                            // Empty queue but units still in flight on
                            // other workers: one of them may requeue a
                            // panicked unit, so spin-yield until the
                            // outstanding count hits zero.
                            if outstanding.load(Ordering::Acquire) == 0 {
                                break;
                            }
                            std::thread::yield_now();
                            continue;
                        };
                        if attempt > 0 {
                            // Bounded backoff: a retried unit waits
                            // before re-running, so repeated failures
                            // don't starve healthy units of workers.
                            std::thread::sleep(RETRY_BACKOFF * attempt);
                        }
                        if let Some(f) = faults {
                            if let Some(d) = f.straggle_for(epoch, i) {
                                std::thread::sleep(d);
                            }
                        }
                        let unit = &units[i];
                        let checkpoint = out.len();
                        let result = panic::catch_unwind(AssertUnwindSafe(|| {
                            if let Some(f) = faults {
                                if attempt < f.panic_attempts(epoch, i) {
                                    panic!("injected worker fault (unit {i}, attempt {attempt})");
                                }
                            }
                            execute_unit(
                                &g,
                                sigma,
                                plans,
                                slots,
                                unit,
                                Some(mqi),
                                registry,
                                &mut stats,
                                &mut scratch,
                                &mut out,
                            );
                        }));
                        match result {
                            Ok(()) => {
                                if attempt > 0 {
                                    units_retried.fetch_add(1, Ordering::Relaxed);
                                }
                                outstanding.fetch_sub(1, Ordering::Release);
                            }
                            Err(_) => {
                                unit_panics.fetch_add(1, Ordering::Relaxed);
                                // The unwind may have left the unit's
                                // partial output and the scratch
                                // mid-update: drop the partial rows and
                                // rebuild the scratch. `stats` is NOT
                                // reset — each counter was complete the
                                // moment it was bumped, and wiping it
                                // here silently dropped quarantined
                                // workers' probes from the merged
                                // report.
                                out.truncate(checkpoint);
                                scratch = UnitScratch::new();
                                if attempt + 1 < MAX_UNIT_ATTEMPTS {
                                    queue
                                        .lock()
                                        .expect("never poisoned")
                                        .push_back((i, attempt + 1));
                                } else {
                                    quarantined.lock().expect("never poisoned").push(i);
                                    outstanding.fetch_sub(1, Ordering::Release);
                                }
                            }
                        }
                    }
                    (out, stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                // Invariant: worker bodies catch every unit panic, so
                // a join failure means the executor itself is broken —
                // that is a bug worth aborting on, not a data fault.
                h.join()
                    .expect("worker bodies are panic-isolated; join can only fail on executor bugs")
            })
            .collect()
    });

    // Merge with an exact capacity reservation, then establish the
    // canonical order in one unstable sort over the concatenation.
    let total = per_worker.iter().map(|(v, _)| v.len()).sum();
    let mut violations = Vec::with_capacity(total);
    let mut cache = CacheStats::default();
    for (mut part, stats) in per_worker {
        violations.append(&mut part);
        cache += stats;
    }
    sort_violations(&mut violations);
    let mut quarantined = quarantined.into_inner().expect("never poisoned");
    quarantined.sort_unstable();
    ThreadedReport {
        violations,
        unit_panics: unit_panics.into_inner(),
        units_retried: units_retried.into_inner(),
        quarantined,
        cache,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{estimate_workload, plan_rules, WorkloadOptions};
    use gfd_core::validate::detect_violations;
    use gfd_core::{Dependency, Gfd, Literal};
    use gfd_graph::{GraphBuilder, Value, Vocab};
    use gfd_pattern::PatternBuilder;
    use std::sync::Arc;

    fn social(n: usize) -> Graph {
        let mut g = GraphBuilder::with_fresh_vocab();
        let blogs: Vec<_> = (0..n)
            .map(|i| {
                let b = g.add_node_labeled("blog");
                g.set_attr_named(
                    b,
                    "keyword",
                    Value::str(if i % 3 == 0 { "spam" } else { "ok" }),
                );
                b
            })
            .collect();
        for i in 0..n {
            let a = g.add_node_labeled("account");
            g.set_attr_named(a, "is_fake", Value::Bool(i % 4 == 0));
            g.add_edge_labeled(a, blogs[i], "post");
            g.add_edge_labeled(a, blogs[(i + 1) % n], "like");
        }
        g.freeze()
    }

    fn spam_rule(vocab: Arc<Vocab>) -> Gfd {
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "account");
        let y = b.node("y", "blog");
        b.edge(x, y, "post");
        let q = b.build();
        let keyword = vocab.intern("keyword");
        let is_fake = vocab.intern("is_fake");
        Gfd::new(
            "spam-poster-is-fake",
            q,
            Dependency::new(
                vec![Literal::const_eq(y, keyword, "spam")],
                vec![Literal::const_eq(x, is_fake, true)],
            ),
        )
    }

    use crate::fault::silence_injected_panics;

    #[test]
    fn threaded_equals_sequential() {
        let g = Arc::new(social(18));
        let sigma = GfdSet::new(vec![spam_rule(g.vocab().clone())]);
        let mut expected = detect_violations(&sigma, &g);
        sort_violations(&mut expected);

        let plans = plan_rules(&sigma);
        let wl = estimate_workload(&sigma, &g, &WorkloadOptions::default());
        for threads in [1usize, 2, 4] {
            let got = run_units_threaded(&g, &sigma, &plans, &wl.units, &wl.slots, threads);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_units_empty_result() {
        let g = Arc::new(social(4));
        let sigma = GfdSet::default();
        let plans = plan_rules(&sigma);
        let got = run_units_threaded(&g, &sigma, &plans, &[], &[], 2);
        assert!(got.is_empty());
    }

    #[test]
    fn transient_panics_retry_to_the_sequential_result() {
        silence_injected_panics();
        let g = Arc::new(social(18));
        let sigma = GfdSet::new(vec![spam_rule(g.vocab().clone())]);
        let mut expected = detect_violations(&sigma, &g);
        sort_violations(&mut expected);

        let plans = plan_rules(&sigma);
        let wl = estimate_workload(&sigma, &g, &WorkloadOptions::default());
        // Transient-only faults: every panicked unit must succeed on
        // retry, so the result is complete and nothing is quarantined.
        let faults = FaultPlan {
            seed: 42,
            unit_panic_p: 0.5,
            sticky_p: 0.0,
            ..Default::default()
        };
        for threads in [1usize, 4] {
            let report = run_units_threaded_report(
                &g,
                &sigma,
                &plans,
                &wl.units,
                &wl.slots,
                &ClassRegistry::new(),
                threads,
                Some(&faults),
                3,
            );
            assert_eq!(report.violations, expected, "threads={threads}");
            assert!(report.quarantined.is_empty());
            assert!(report.unit_panics > 0, "plan injected nothing");
            assert_eq!(report.units_retried as usize, {
                (0..wl.units.len())
                    .filter(|&i| faults.panic_attempts(3, i) > 0)
                    .count()
            });
        }
    }

    #[test]
    fn sticky_panics_quarantine_and_spare_siblings() {
        silence_injected_panics();
        let g = Arc::new(social(18));
        let sigma = GfdSet::new(vec![spam_rule(g.vocab().clone())]);
        let plans = plan_rules(&sigma);
        let wl = estimate_workload(&sigma, &g, &WorkloadOptions::default());
        let faults = FaultPlan {
            seed: 7,
            unit_panic_p: 0.4,
            sticky_p: 1.0, // every injected fault recurs on retry
            ..Default::default()
        };
        let expected_quarantine: Vec<usize> = (0..wl.units.len())
            .filter(|&i| faults.panic_attempts(9, i) == u32::MAX)
            .collect();
        assert!(
            !expected_quarantine.is_empty() && expected_quarantine.len() < wl.units.len(),
            "seed must fault some but not all of the {} units",
            wl.units.len()
        );
        let report = run_units_threaded_report(
            &g,
            &sigma,
            &plans,
            &wl.units,
            &wl.slots,
            &ClassRegistry::new(),
            4,
            Some(&faults),
            9,
        );
        // Every sticky unit is reported — never silently dropped —
        // after exactly MAX_UNIT_ATTEMPTS panics; sibling units all
        // completed (their violations are exactly the sequential
        // result minus the quarantined units' shares).
        assert_eq!(report.quarantined, expected_quarantine);
        assert_eq!(
            report.unit_panics,
            expected_quarantine.len() as u64 * MAX_UNIT_ATTEMPTS as u64
        );
        let mut surviving = Vec::new();
        let mut scratch = UnitScratch::new();
        let registry = ClassRegistry::new();
        let mut stats = CacheStats::default();
        for (i, unit) in wl.units.iter().enumerate() {
            if !expected_quarantine.contains(&i) {
                execute_unit(
                    &g,
                    &sigma,
                    &plans,
                    &wl.slots,
                    unit,
                    None,
                    &registry,
                    &mut stats,
                    &mut scratch,
                    &mut surviving,
                );
            }
        }
        sort_violations(&mut surviving);
        assert_eq!(report.violations, surviving);
    }

    /// Satellite regression: the merged cache counters must include
    /// probes made by workers whose later units panicked or were
    /// quarantined. Injected faults fire *before* the unit's registry
    /// probes, so every non-quarantined unit probes exactly as often
    /// as in a fault-free sequential replay — if a panic handler wiped
    /// worker-local stats, the faulty run would come up short.
    #[test]
    fn cache_stats_survive_quarantined_workers() {
        silence_injected_panics();
        let g = Arc::new(social(18));
        let sigma = GfdSet::new(vec![spam_rule(g.vocab().clone())]);
        let plans = plan_rules(&sigma);
        let wl = estimate_workload(&sigma, &g, &WorkloadOptions::default());
        let faults = FaultPlan {
            seed: 7,
            unit_panic_p: 0.4,
            sticky_p: 1.0, // injected faults stick: panics + quarantine
            ..Default::default()
        };
        let report = run_units_threaded_report(
            &g,
            &sigma,
            &plans,
            &wl.units,
            &wl.slots,
            &ClassRegistry::new(),
            3,
            Some(&faults),
            9,
        );
        assert!(report.unit_panics > 0 && !report.quarantined.is_empty());

        // Sequential replay of exactly the units that completed, on a
        // fresh registry: the probe volume must match the faulty run.
        let registry = ClassRegistry::new();
        let mqi = MultiQueryIndex::build(&plans, &registry);
        let mut stats = CacheStats::default();
        let mut scratch = UnitScratch::new();
        let mut sink = Vec::new();
        for (i, unit) in wl.units.iter().enumerate() {
            if !report.quarantined.contains(&i) {
                execute_unit(
                    &g,
                    &sigma,
                    &plans,
                    &wl.slots,
                    unit,
                    Some(&mqi),
                    &registry,
                    &mut stats,
                    &mut scratch,
                    &mut sink,
                );
            }
        }
        assert_eq!(
            report.cache.hits + report.cache.misses,
            stats.hits + stats.misses,
            "panic handling must not lose cache counters"
        );
    }
}
