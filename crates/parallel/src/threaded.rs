//! Real-thread execution of work units.
//!
//! The simulated cluster (crate docs) is what the benchmarks report,
//! but the work-unit machinery is genuinely parallel-safe: this module
//! runs units across OS threads (std scoped threads over an atomic
//! work queue — no external thread-pool dependency), with a per-thread
//! multi-query cache, and is used by the test suite to verify that
//! concurrent execution produces exactly the sequential violations.
//!
//! Every worker shares the *same* frozen CSR snapshot through one
//! `Arc<Graph>` — the whole point of the builder/snapshot split: no
//! per-worker graph clone, no synchronization on the read path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use gfd_core::{GfdSet, Violation};
use gfd_graph::Graph;

use crate::unitexec::{execute_unit, sort_violations, MatchCache, MultiQueryIndex, UnitScratch};
use crate::workload::{PivotedRule, UnitSlot, WorkUnit};

/// Executes all units (descriptors over the `slots` arena) across
/// `threads` OS threads sharing one `Arc<Graph>`, returning the
/// canonical (sorted) violation list.
pub fn run_units_threaded(
    g: &Arc<Graph>,
    sigma: &GfdSet,
    plans: &[PivotedRule],
    units: &[WorkUnit],
    slots: &[UnitSlot],
    threads: usize,
) -> Vec<Violation> {
    let mqi = MultiQueryIndex::build(plans);
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<Violation>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.max(1))
            .map(|_| {
                let g = Arc::clone(g);
                let next = &next;
                let mqi = &mqi;
                scope.spawn(move || {
                    let mut cache = MatchCache::new();
                    let mut scratch = UnitScratch::new();
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(unit) = units.get(i) else { break };
                        execute_unit(
                            &g,
                            sigma,
                            plans,
                            slots,
                            unit,
                            Some(mqi),
                            &mut cache,
                            &mut scratch,
                            &mut out,
                        );
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    // Merge with an exact capacity reservation (the flat_map-collect it
    // replaces re-grew the vector share by share), then establish the
    // canonical order in one unstable sort over the concatenation.
    let total = per_worker.iter().map(Vec::len).sum();
    let mut violations = Vec::with_capacity(total);
    for mut part in per_worker {
        violations.append(&mut part);
    }
    sort_violations(&mut violations);
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{estimate_workload, plan_rules, WorkloadOptions};
    use gfd_core::validate::detect_violations;
    use gfd_core::{Dependency, Gfd, Literal};
    use gfd_graph::{GraphBuilder, Value, Vocab};
    use gfd_pattern::PatternBuilder;
    use std::sync::Arc;

    fn social(n: usize) -> Graph {
        let mut g = GraphBuilder::with_fresh_vocab();
        let blogs: Vec<_> = (0..n)
            .map(|i| {
                let b = g.add_node_labeled("blog");
                g.set_attr_named(
                    b,
                    "keyword",
                    Value::str(if i % 3 == 0 { "spam" } else { "ok" }),
                );
                b
            })
            .collect();
        for i in 0..n {
            let a = g.add_node_labeled("account");
            g.set_attr_named(a, "is_fake", Value::Bool(i % 4 == 0));
            g.add_edge_labeled(a, blogs[i], "post");
            g.add_edge_labeled(a, blogs[(i + 1) % n], "like");
        }
        g.freeze()
    }

    fn spam_rule(vocab: Arc<Vocab>) -> Gfd {
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "account");
        let y = b.node("y", "blog");
        b.edge(x, y, "post");
        let q = b.build();
        let keyword = vocab.intern("keyword");
        let is_fake = vocab.intern("is_fake");
        Gfd::new(
            "spam-poster-is-fake",
            q,
            Dependency::new(
                vec![Literal::const_eq(y, keyword, "spam")],
                vec![Literal::const_eq(x, is_fake, true)],
            ),
        )
    }

    #[test]
    fn threaded_equals_sequential() {
        let g = Arc::new(social(18));
        let sigma = GfdSet::new(vec![spam_rule(g.vocab().clone())]);
        let mut expected = detect_violations(&sigma, &g);
        sort_violations(&mut expected);

        let plans = plan_rules(&sigma);
        let wl = estimate_workload(&sigma, &g, &WorkloadOptions::default());
        for threads in [1usize, 2, 4] {
            let got = run_units_threaded(&g, &sigma, &plans, &wl.units, &wl.slots, threads);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_units_empty_result() {
        let g = Arc::new(social(4));
        let sigma = GfdSet::default();
        let plans = plan_rules(&sigma);
        let got = run_units_threaded(&g, &sigma, &plans, &[], &[], 2);
        assert!(got.is_empty());
    }
}
