//! Durable write-ahead edit log: the on-disk backing of the
//! standing-violation service's [`EditLog`](crate::EditLog).
//!
//! ## On-disk format
//!
//! A log file is the 8-byte magic `GFDWAL01` followed by checksummed
//! frames, each a plain-bytes record (no serde):
//!
//! ```text
//! ┌──────┬───────────┬───────────────┬─────────────────┬─────────┬────────────┐
//! │ kind │ epoch u64 │ sym_count u32 │ payload_len u32 │ payload │ cksum u64  │
//! │  u8  │    LE     │      LE       │       LE        │  bytes  │     LE     │
//! └──────┴───────────┴───────────────┴─────────────────┴─────────┴────────────┘
//! ```
//!
//! The checksum ([`gfd_util::checksum64`]) covers header **and**
//! payload, so a torn write anywhere in the frame is detected. Frame
//! zero is always a **base snapshot** (`kind = 1`): a
//! [`GraphData`] encoding of the graph at the log's base epoch — the
//! floor recovery replays from. Every later frame is a **delta**
//! (`kind = 2`) holding one compacted [`GraphDelta`] for one epoch,
//! prefixed by the vocabulary names interned since the previous frame;
//! `sym_count` is the total vocabulary size after the frame, so replay
//! validates every symbol against exactly the vocabulary the writer
//! had.
//!
//! ## Durability contract
//!
//! * [`SyncPolicy::EveryEpoch`] fsyncs after every committed epoch: an
//!   epoch acknowledged to a subscriber is on stable storage.
//! * [`SyncPolicy::EveryN`] group-commits: up to `N − 1` trailing
//!   epochs may be lost on a crash (kill-before-fsync), but recovery
//!   still lands on a *consistent* earlier epoch.
//! * [`SyncPolicy::OnDemand`] only fsyncs when the service is asked to
//!   (subscriber demand, shutdown).
//!
//! [`recover`] never trusts a byte: length and checksum mismatches,
//! epoch gaps, unknown kinds and undecodable payloads all **truncate
//! the log at the first faulty frame** — the surviving prefix is
//! replayed onto the base snapshot, the file is cut back to the valid
//! prefix on disk, and the damage is reported (never panicked) through
//! [`RecoveryReport`]. A log whose snapshot frame itself is damaged
//! has no floor to recover from and surfaces as a [`WalError`].

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use gfd_graph::{Graph, GraphData, GraphDelta, Vocab};
use gfd_util::checksum64;

/// File magic: identifies the format and its version. Bumping the
/// codec (or [`checksum64`]) bumps the trailing version digits.
pub const MAGIC: [u8; 8] = *b"GFDWAL01";
/// Frame kind: base snapshot ([`GraphData`] payload).
pub const KIND_SNAPSHOT: u8 = 1;
/// Frame kind: one epoch's compacted delta (+ new vocabulary names).
pub const KIND_DELTA: u8 = 2;
/// Fixed frame header size: kind, epoch, sym_count, payload_len.
pub const HEADER_LEN: usize = 1 + 8 + 4 + 4;
/// Trailing checksum size.
const CKSUM_LEN: usize = 8;

/// When the writer forces appended frames onto stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every appended epoch (durability before ack).
    EveryEpoch,
    /// Group commit: fsync once every `N` appended epochs (and on
    /// demand). `EveryN(1)` behaves like [`SyncPolicy::EveryEpoch`].
    EveryN(u32),
    /// Only fsync when [`WalWriter::sync`] is called explicitly.
    OnDemand,
}

/// Errors that end recovery with **no** usable log: I/O failures and
/// damage to the parts recovery cannot truncate around (magic, base
/// snapshot).
#[derive(Debug)]
pub enum WalError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The log has no recoverable floor (bad magic, corrupt snapshot
    /// frame) or an append-side invariant was violated.
    Corrupt {
        /// Byte offset of the damage.
        offset: u64,
        /// What was wrong.
        what: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt { offset, what } => {
                write!(f, "wal unrecoverable at byte {offset}: {what}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// The first faulty frame [`recover`] truncated at: where it started,
/// what was wrong with it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameFault {
    /// Byte offset of the frame the fault was detected in.
    pub offset: u64,
    /// The epoch the frame claimed (if its header was readable).
    pub epoch: Option<u64>,
    /// Human-readable description of the fault.
    pub what: String,
}

/// What [`recover`] did: how far it replayed and what it cut away.
/// Every absorbed fault is visible here — the kill-and-recover soak
/// asserts on these counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The epoch of the base snapshot frame.
    pub base_epoch: u64,
    /// The epoch recovery landed on (base + replayed deltas).
    pub recovered_epoch: u64,
    /// Delta frames successfully replayed onto the snapshot.
    pub replayed_epochs: u64,
    /// Frames dropped by truncation (best-effort count: frames after
    /// the fault are sized by their own headers where readable, so an
    /// overwritten length field can merge trailing frames into one).
    pub truncated_frames: u64,
    /// Exact bytes cut from the file.
    pub truncated_bytes: u64,
    /// The fault that triggered truncation, if any.
    pub corruption: Option<FrameFault>,
}

/// Location of one intact frame, as reported by [`frame_bounds`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameInfo {
    /// Byte offset of the frame start.
    pub offset: u64,
    /// Total frame length (header + payload + checksum).
    pub len: u64,
    /// The frame's epoch.
    pub epoch: u64,
    /// [`KIND_SNAPSHOT`] or [`KIND_DELTA`].
    pub kind: u8,
}

/// Append side of the log. Writes are buffered by the OS; durability
/// is governed by the [`SyncPolicy`] — the writer deliberately does
/// **not** fsync on drop, so a crash (or a simulated one in the soak)
/// loses exactly the epochs the policy has not yet forced down.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: SyncPolicy,
    /// Last epoch appended (the snapshot's epoch right after create).
    head: u64,
    /// Vocabulary size already persisted; `append` writes the names
    /// interned past this point into the frame.
    syms_written: usize,
    /// Epochs appended since the last fsync.
    unsynced: u32,
    /// File length, and the prefix known to be on stable storage.
    len: u64,
    synced_len: u64,
    synced_epoch: u64,
    /// End of the snapshot frame (== start of the first delta frame).
    base_len: u64,
    /// Scratch buffer frames are assembled in.
    buf: Vec<u8>,
    /// Lifetime counters (snapshot frame included).
    frames: u64,
    fsyncs: u64,
}

impl WalWriter {
    /// Creates (truncating any previous file at `path`) a fresh log
    /// whose floor is a snapshot of `g` at `base_epoch`. The snapshot
    /// frame is always fsynced — a log that exists has a floor.
    pub fn create(
        path: &Path,
        base_epoch: u64,
        g: &Graph,
        policy: SyncPolicy,
    ) -> Result<WalWriter, WalError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&MAGIC)?;

        let data = GraphData::from_graph(g);
        let sym_count = data.symbols.len() as u32;
        let mut buf = Vec::new();
        let mut payload = Vec::new();
        data.encode_into(&mut payload);
        frame_into(&mut buf, KIND_SNAPSHOT, base_epoch, sym_count, &payload);
        file.write_all(&buf)?;
        file.sync_all()?;

        let len = (MAGIC.len() + buf.len()) as u64;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            policy,
            head: base_epoch,
            syms_written: sym_count as usize,
            unsynced: 0,
            len,
            synced_len: len,
            synced_epoch: base_epoch,
            base_len: len,
            buf,
            frames: 1,
            fsyncs: 1,
        })
    }

    /// Appends one epoch's compacted delta. `vocab` must be the
    /// vocabulary of the snapshot the delta produces (the service's
    /// shared `Vocab`): names interned since the last frame ride along
    /// in the payload so recovery can rebuild interning incrementally.
    pub fn append(
        &mut self,
        epoch: u64,
        delta: &GraphDelta,
        vocab: &Vocab,
    ) -> Result<(), WalError> {
        if epoch != self.head + 1 {
            return Err(WalError::Corrupt {
                offset: self.len,
                what: format!("append of epoch {epoch} onto head {}", self.head),
            });
        }
        let snapshot = vocab.snapshot();
        let new_syms = &snapshot[self.syms_written..];

        let mut payload = Vec::new();
        delta.encode_with_symbols(new_syms, &mut payload);
        self.buf.clear();
        frame_into(
            &mut self.buf,
            KIND_DELTA,
            epoch,
            snapshot.len() as u32,
            &payload,
        );
        self.file.write_all(&self.buf)?;

        self.len += self.buf.len() as u64;
        self.head = epoch;
        self.syms_written = snapshot.len();
        self.frames += 1;
        self.unsynced += 1;
        match self.policy {
            SyncPolicy::EveryEpoch => self.sync()?,
            SyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            SyncPolicy::OnDemand => {}
        }
        Ok(())
    }

    /// Forces everything appended so far onto stable storage.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_all()?;
        self.synced_len = self.len;
        self.synced_epoch = self.head;
        self.unsynced = 0;
        self.fsyncs += 1;
        Ok(())
    }

    /// Last epoch appended.
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Current file length in bytes.
    pub fn bytes(&self) -> u64 {
        self.len
    }

    /// Length of the prefix known to be fsynced — the most a
    /// kill-before-fsync crash can preserve is exactly this.
    pub fn synced_bytes(&self) -> u64 {
        self.synced_len
    }

    /// Last epoch known to be fsynced.
    pub fn synced_epoch(&self) -> u64 {
        self.synced_epoch
    }

    /// End of the base snapshot frame (corrupting bytes before this
    /// point destroys the recovery floor).
    pub fn base_bytes(&self) -> u64 {
        self.base_len
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Frames written over the writer's lifetime (snapshot included).
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// fsyncs issued over the writer's lifetime.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// The writer's sync policy.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }
}

/// Assembles one frame: header, payload, trailing checksum over both.
fn frame_into(out: &mut Vec<u8>, kind: u8, epoch: u64, sym_count: u32, payload: &[u8]) {
    let start = out.len();
    out.push(kind);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&sym_count.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let cksum = checksum64(&out[start..]);
    out.extend_from_slice(&cksum.to_le_bytes());
}

/// A frame parsed from raw bytes (payload still encoded).
struct RawFrame<'a> {
    kind: u8,
    epoch: u64,
    sym_count: u32,
    payload: &'a [u8],
    /// Total on-disk size of the frame.
    len: usize,
}

/// Parses and checksum-verifies the frame at `pos`. `Err` is a
/// human-readable fault description (the caller attaches offsets).
fn parse_frame(bytes: &[u8], pos: usize) -> Result<RawFrame<'_>, String> {
    let rest = &bytes[pos..];
    if rest.len() < HEADER_LEN {
        return Err(format!("torn header: {} of {HEADER_LEN} bytes", rest.len()));
    }
    let kind = rest[0];
    let epoch = u64::from_le_bytes(rest[1..9].try_into().expect("8 header bytes"));
    let sym_count = u32::from_le_bytes(rest[9..13].try_into().expect("4 header bytes"));
    let payload_len = u32::from_le_bytes(rest[13..17].try_into().expect("4 header bytes")) as usize;
    let total = HEADER_LEN + payload_len + CKSUM_LEN;
    if rest.len() < total {
        return Err(format!(
            "torn frame: {} of {total} bytes (payload_len {payload_len})",
            rest.len()
        ));
    }
    let stored = u64::from_le_bytes(
        rest[HEADER_LEN + payload_len..total]
            .try_into()
            .expect("8 checksum bytes"),
    );
    let actual = checksum64(&rest[..HEADER_LEN + payload_len]);
    if stored != actual {
        return Err(format!(
            "checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
        ));
    }
    Ok(RawFrame {
        kind,
        epoch,
        sym_count,
        payload: &rest[HEADER_LEN..HEADER_LEN + payload_len],
        len: total,
    })
}

/// Walks the intact frames of the log at `path` (checksum-verified,
/// payloads not decoded) — the crash soak uses this to predict where
/// recovery must land after a simulated crash. Stops at the first
/// fault; errors only if the file cannot be read or lacks the magic.
pub fn frame_bounds(path: &Path) -> Result<Vec<FrameInfo>, WalError> {
    let bytes = std::fs::read(path)?;
    check_magic(&bytes)?;
    let mut frames = Vec::new();
    let mut pos = MAGIC.len();
    while pos < bytes.len() {
        match parse_frame(&bytes, pos) {
            Ok(f) => {
                frames.push(FrameInfo {
                    offset: pos as u64,
                    len: f.len as u64,
                    epoch: f.epoch,
                    kind: f.kind,
                });
                pos += f.len;
            }
            Err(_) => break,
        }
    }
    Ok(frames)
}

fn check_magic(bytes: &[u8]) -> Result<(), WalError> {
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        return Err(WalError::Corrupt {
            offset: 0,
            what: "missing or unknown magic".into(),
        });
    }
    Ok(())
}

/// Best-effort count of the frames inside the truncated suffix: walk
/// by each frame's own claimed length; anything that does not parse as
/// a whole frame counts as one torn frame.
fn count_dropped_frames(bytes: &[u8], mut pos: usize) -> u64 {
    let mut dropped = 0;
    while pos < bytes.len() {
        dropped += 1;
        let rest = &bytes[pos..];
        if rest.len() < HEADER_LEN {
            break;
        }
        let payload_len =
            u32::from_le_bytes(rest[13..17].try_into().expect("4 header bytes")) as usize;
        let total = HEADER_LEN + payload_len + CKSUM_LEN;
        if rest.len() < total {
            break;
        }
        pos += total;
    }
    dropped
}

/// Opens the log at `path`, replays every intact epoch onto the base
/// snapshot, truncates the file at the first faulty frame, and returns
/// the recovered graph (on a fresh vocabulary), a writer positioned at
/// the recovered head, and the [`RecoveryReport`]. Hostile bytes
/// anywhere past the snapshot frame degrade recovery (to an earlier
/// epoch), never panic it.
pub fn recover(
    path: &Path,
    policy: SyncPolicy,
) -> Result<(Graph, WalWriter, RecoveryReport), WalError> {
    recover_in(path, policy, &Vocab::shared())
}

/// [`recover`] into an **existing** vocabulary — the one the caller's
/// rule set was built against, so patterns match the recovered graph
/// by `Arc` identity. Every symbol replayed from the log must land on
/// the index the writer assigned it; a vocabulary whose history
/// diverged from the log's is unrecoverable-with-this-vocabulary (a
/// caller error, not file damage), reported as [`WalError::Corrupt`]
/// **without** truncating the file.
pub fn recover_in(
    path: &Path,
    policy: SyncPolicy,
    vocab: &Arc<Vocab>,
) -> Result<(Graph, WalWriter, RecoveryReport), WalError> {
    let bytes = std::fs::read(path)?;
    check_magic(&bytes)?;

    // Frame zero: the snapshot floor. Damage here is unrecoverable.
    let base = parse_frame(&bytes, MAGIC.len()).map_err(|what| WalError::Corrupt {
        offset: MAGIC.len() as u64,
        what: format!("base snapshot frame: {what}"),
    })?;
    if base.kind != KIND_SNAPSHOT {
        return Err(WalError::Corrupt {
            offset: MAGIC.len() as u64,
            what: format!("first frame has kind {} (want snapshot)", base.kind),
        });
    }
    let data = GraphData::decode(base.payload).map_err(|e| WalError::Corrupt {
        offset: MAGIC.len() as u64,
        what: format!("base snapshot payload: {e}"),
    })?;
    if data.symbols.len() as u32 != base.sym_count {
        return Err(WalError::Corrupt {
            offset: MAGIC.len() as u64,
            what: format!(
                "snapshot sym_count {} disagrees with payload ({} symbols)",
                base.sym_count,
                data.symbols.len()
            ),
        });
    }
    let mut g = data.into_graph_in(vocab).map_err(|e| WalError::Corrupt {
        offset: MAGIC.len() as u64,
        what: format!("base snapshot payload: {e}"),
    })?;

    let mut report = RecoveryReport {
        base_epoch: base.epoch,
        recovered_epoch: base.epoch,
        ..RecoveryReport::default()
    };
    let base_len = (MAGIC.len() + base.len) as u64;
    let mut pos = base_len as usize;
    let mut head = base.epoch;
    let mut syms = base.sym_count;
    let mut frames = 1u64;

    let mut fault: Option<FrameFault> = None;
    while pos < bytes.len() {
        // Any fault from here on truncates; closures keep the
        // fault-description plumbing in one place.
        let outcome = parse_frame(&bytes, pos).and_then(|f| {
            if f.kind != KIND_DELTA {
                return Err(format!("unexpected frame kind {}", f.kind));
            }
            if f.epoch != head + 1 {
                return Err(format!("epoch gap: frame {} after head {head}", f.epoch));
            }
            let (names, delta) = GraphDelta::decode_with_symbols(f.payload, syms)
                .map_err(|e| format!("payload: {e}"))?;
            if syms as u64 + names.len() as u64 != f.sym_count as u64 {
                return Err(format!(
                    "sym_count {} disagrees with {} + {} new names",
                    f.sym_count,
                    syms,
                    names.len()
                ));
            }
            Ok((f, names, delta))
        });
        let (f, names, delta) = match outcome {
            Ok(v) => v,
            Err(what) => {
                fault = Some(FrameFault {
                    offset: pos as u64,
                    epoch: parse_epoch_if_readable(&bytes, pos),
                    what,
                });
                break;
            }
        };
        // The payload decoded, but it must also *apply*: a frame whose
        // delta disagrees with the replayed snapshot (stale base,
        // phantom edge) is as corrupt as a bad checksum.
        if let Err(e) = delta.check_against(&g) {
            fault = Some(FrameFault {
                offset: pos as u64,
                epoch: Some(f.epoch),
                what: format!("delta does not apply: {e}"),
            });
            break;
        }
        // The frame is checksum-verified, so if interning its new
        // names does not land on the writer's indices the *supplied
        // vocabulary* diverged from the log's history — a caller
        // error, not file damage: hard error, no truncation.
        for (j, name) in names.iter().enumerate() {
            let sym = vocab.intern(name);
            if sym.0 as usize != syms as usize + j {
                return Err(WalError::Corrupt {
                    offset: pos as u64,
                    what: format!(
                        "symbol {name:?} interned at index {} where the log expects {}",
                        sym.0,
                        syms as usize + j
                    ),
                });
            }
        }
        g = g.apply_delta(&delta);
        head = f.epoch;
        syms = f.sym_count;
        frames += 1;
        pos += f.len;
        report.replayed_epochs += 1;
    }
    report.recovered_epoch = head;

    if fault.is_some() || pos < bytes.len() {
        report.truncated_frames = count_dropped_frames(&bytes, pos);
        report.truncated_bytes = (bytes.len() - pos) as u64;
        report.corruption = fault;
    }

    // Cut the file back to the valid prefix so the writer appends onto
    // known-good frames, and force the cut down before trusting it.
    let file = OpenOptions::new().append(true).open(path)?;
    if (pos as u64) < bytes.len() as u64 {
        file.set_len(pos as u64)?;
    }
    file.sync_all()?;

    let writer = WalWriter {
        file,
        path: path.to_path_buf(),
        policy,
        head,
        syms_written: syms as usize,
        unsynced: 0,
        len: pos as u64,
        synced_len: pos as u64,
        synced_epoch: head,
        base_len,
        buf: Vec::new(),
        frames,
        fsyncs: 1,
    };
    Ok((g, writer, report))
}

/// The epoch field of the frame at `pos`, if that many header bytes
/// survive (fault reporting only — the value is unverified).
fn parse_epoch_if_readable(bytes: &[u8], pos: usize) -> Option<u64> {
    let rest = &bytes[pos..];
    if rest.len() < 9 {
        return None;
    }
    Some(u64::from_le_bytes(
        rest[1..9].try_into().expect("8 header bytes"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::{GraphBuilder, NodeId, Value};
    use gfd_util::TempDir;

    /// A tiny graph plus a few recorded epochs, including one that
    /// interns a brand-new attribute name after the snapshot.
    fn build_log(path: &Path, policy: SyncPolicy) -> (Graph, Vec<Graph>, WalWriter) {
        let mut b = GraphBuilder::with_fresh_vocab();
        let a = b.add_node_labeled("account");
        let c = b.add_node_labeled("account");
        b.add_edge_labeled(a, c, "follows");
        let base = b.freeze();

        let mut w = WalWriter::create(path, 0, &base, policy).unwrap();
        let mut snapshots = vec![base.edit(|_| {})];
        let mut g = snapshots[0].edit(|_| {});
        for epoch in 1..=5u64 {
            let (next, delta) = g.edit_with_delta(|b| {
                let u = b.add_node_labeled("post");
                b.add_edge_labeled(NodeId(0), u, "authored");
                if epoch == 3 {
                    // A name the snapshot has never seen: exercises
                    // the new-symbol carriage in the frame payload.
                    b.set_attr_named(u, "flagged_late", Value::Bool(true));
                }
            });
            w.append(epoch, &delta, next.vocab()).unwrap();
            snapshots.push(next.edit(|_| {}));
            g = next;
        }
        (base, snapshots, w)
    }

    fn graphs_equal(a: &Graph, b: &Graph) -> bool {
        a.node_count() == b.node_count()
            && a.edge_count() == b.edge_count()
            && a.nodes().all(|u| {
                a.label(u) == b.label(u)
                    && a.attrs(u) == b.attrs(u)
                    && a.out_slice(u) == b.out_slice(u)
            })
    }

    #[test]
    fn round_trip_replays_to_head() {
        let dir = TempDir::new("gfd-wal-roundtrip").unwrap();
        let path = dir.file("edits.wal");
        let (_, snapshots, w) = build_log(&path, SyncPolicy::EveryEpoch);
        assert_eq!(w.head(), 5);
        assert_eq!(w.frames(), 6);
        drop(w);

        let (g, w2, report) = recover(&path, SyncPolicy::EveryEpoch).unwrap();
        assert_eq!(report.recovered_epoch, 5);
        assert_eq!(report.replayed_epochs, 5);
        assert_eq!(report.truncated_frames, 0);
        assert_eq!(report.truncated_bytes, 0);
        assert!(report.corruption.is_none());
        assert!(graphs_equal(&g, &snapshots[5]));
        // The recovered writer can keep appending.
        assert_eq!(w2.head(), 5);
        // The late-interned name survived replay.
        assert!(g.vocab().lookup("flagged_late").is_some());
    }

    #[test]
    fn truncation_oracle_every_prefix_recovers_intact_epochs() {
        let dir = TempDir::new("gfd-wal-truncate").unwrap();
        let path = dir.file("edits.wal");
        let (_, snapshots, w) = build_log(&path, SyncPolicy::EveryEpoch);
        drop(w);
        let bytes = std::fs::read(&path).unwrap();
        let frames = frame_bounds(&path).unwrap();
        assert_eq!(frames.len(), 6);
        let snapshot_end = (frames[0].offset + frames[0].len) as usize;

        let step = if std::env::var_os("BENCH_SMOKE").is_some() {
            7
        } else {
            1
        };
        for cut in (0..=bytes.len()).step_by(step) {
            let prefix = dir.file(&format!("prefix-{cut}.wal"));
            std::fs::write(&prefix, &bytes[..cut]).unwrap();
            if cut < snapshot_end {
                // No intact snapshot: no floor, hard error.
                assert!(
                    recover(&prefix, SyncPolicy::OnDemand).is_err(),
                    "cut {cut} (before snapshot end {snapshot_end}) recovered"
                );
                continue;
            }
            let intact = frames
                .iter()
                .skip(1)
                .take_while(|f| (f.offset + f.len) as usize <= cut)
                .count() as u64;
            let (g, _, report) = recover(&prefix, SyncPolicy::OnDemand).unwrap();
            assert_eq!(
                report.recovered_epoch, intact,
                "cut {cut}: wrong recovery epoch"
            );
            assert!(
                graphs_equal(&g, &snapshots[intact as usize]),
                "cut {cut}: recovered graph diverges from epoch {intact}"
            );
            let torn =
                cut > (frames[intact as usize].offset + frames[intact as usize].len) as usize;
            assert_eq!(
                report.corruption.is_some(),
                torn,
                "cut {cut}: torn-tail reporting wrong"
            );
            // Recovery truncated the file: recovering again is clean.
            let (_, _, again) = recover(&prefix, SyncPolicy::OnDemand).unwrap();
            assert!(again.corruption.is_none(), "cut {cut}: re-recovery dirty");
            assert_eq!(again.recovered_epoch, intact);
        }
    }

    #[test]
    fn mid_file_bit_flip_truncates_at_the_flipped_frame() {
        let dir = TempDir::new("gfd-wal-bitflip").unwrap();
        let path = dir.file("edits.wal");
        let (_, snapshots, w) = build_log(&path, SyncPolicy::EveryEpoch);
        drop(w);
        let frames = frame_bounds(&path).unwrap();

        // Flip one bit inside epoch 3's frame.
        let target = frames[3];
        let mut bytes = std::fs::read(&path).unwrap();
        let at = (target.offset + target.len / 2) as usize;
        bytes[at] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let (g, _, report) = recover(&path, SyncPolicy::OnDemand).unwrap();
        assert_eq!(report.recovered_epoch, 2);
        assert_eq!(report.replayed_epochs, 2);
        assert!(graphs_equal(&g, &snapshots[2]));
        let fault = report.corruption.expect("flip must be reported");
        assert_eq!(fault.offset, target.offset);
        // Epochs 3..5 dropped.
        assert_eq!(report.truncated_frames, 3);
        assert_eq!(report.truncated_bytes, bytes.len() as u64 - target.offset);
        // The file was cut back on disk.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), target.offset);
    }

    #[test]
    fn group_commit_lags_then_catches_up() {
        let dir = TempDir::new("gfd-wal-group").unwrap();
        let path = dir.file("edits.wal");
        let (_, _, mut w) = build_log(&path, SyncPolicy::EveryN(3));
        // 5 appends under EveryN(3): one group fsync at epoch 3; 4..5
        // are appended but not yet forced down.
        assert_eq!(w.synced_epoch(), 3);
        assert!(w.synced_bytes() < w.bytes());
        let before = w.fsyncs();
        w.sync().unwrap();
        assert_eq!(w.fsyncs(), before + 1);
        assert_eq!(w.synced_epoch(), 5);
        assert_eq!(w.synced_bytes(), w.bytes());
    }

    #[test]
    fn unrecoverable_logs_error_out() {
        let dir = TempDir::new("gfd-wal-unrecoverable").unwrap();

        // Empty file: no magic.
        let empty = dir.file("empty.wal");
        std::fs::write(&empty, b"").unwrap();
        assert!(matches!(
            recover(&empty, SyncPolicy::OnDemand),
            Err(WalError::Corrupt { .. })
        ));

        // Wrong magic.
        let bad = dir.file("bad.wal");
        std::fs::write(&bad, b"NOTAWAL0rest").unwrap();
        assert!(recover(&bad, SyncPolicy::OnDemand).is_err());

        // Valid log with a bit flipped inside the *snapshot* frame:
        // the floor itself is damaged — hard error, not truncation.
        let path = dir.file("floor.wal");
        let (_, _, w) = build_log(&path, SyncPolicy::EveryEpoch);
        let base_end = w.base_bytes();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = (MAGIC.len() as u64 + (base_end - MAGIC.len() as u64) / 2) as usize;
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            recover(&path, SyncPolicy::OnDemand),
            Err(WalError::Corrupt { .. })
        ));
    }

    #[test]
    fn append_rejects_epoch_gaps() {
        let dir = TempDir::new("gfd-wal-gap").unwrap();
        let path = dir.file("edits.wal");
        let (_, snapshots, mut w) = build_log(&path, SyncPolicy::OnDemand);
        let g = &snapshots[5];
        let (_, delta) = g.edit_with_delta(|b| {
            b.add_node_labeled("orphan");
        });
        assert!(w.append(9, &delta, g.vocab()).is_err());
        assert!(w.append(6, &delta, g.vocab()).is_ok());
    }
}
