//! Workload partitioning (§6.1) — the load-balancing problem.
//!
//! An `n`-partition of `W(Σ, G)` is balanced when the per-processor
//! cost sums are approximately equal; finding the optimum is
//! NP-complete (Prop. 12), but the greedy strategy the paper adopts
//! from makespan minimization — process units in descending weight,
//! always assign to the least-loaded processor (LPT) — is a
//! 2-approximation.

use crate::Assignment;

/// Assigns each unit (given by its cost) to a worker in `0..n` with
/// greedy LPT. Returns `assignment[unit] = worker`.
pub fn lpt_assign(costs: &[u64], n: usize) -> Vec<usize> {
    assert!(n > 0, "lpt_assign: cannot partition over zero workers");
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(costs[i]));
    let mut load = vec![0u64; n];
    let mut assignment = vec![0usize; costs.len()];
    for i in order {
        // Invariant: the entry assert guarantees `0..n` is non-empty.
        let worker = (0..n).min_by_key(|&w| (load[w], w)).expect("n > 0");
        assignment[i] = worker;
        load[worker] += costs[i];
    }
    assignment
}

/// Uniform random assignment (the `repran`/`disran` baseline). A tiny
/// splitmix64 keeps this crate free of an RNG dependency.
pub fn random_assign(count: usize, n: usize, seed: u64) -> Vec<usize> {
    assert!(n > 0, "random_assign: cannot assign over zero workers");
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    (0..count).map(|_| (next() % n as u64) as usize).collect()
}

/// Dispatches on the [`Assignment`] strategy.
pub fn assign(strategy: Assignment, costs: &[u64], n: usize) -> Vec<usize> {
    match strategy {
        Assignment::Balanced => lpt_assign(costs, n),
        Assignment::Random { seed } => random_assign(costs.len(), n, seed),
    }
}

/// Grouped LPT: units sharing a group key are assigned to the same
/// worker (groups are LPT-scheduled by total cost). This is the
/// *sub-pattern scheduling* side of the multi-query optimization
/// ([31]; appendix): units anchored at the same pivot share cached
/// component enumerations, so co-locating them preserves cache
/// locality while keeping the makespan 2-approximate at group
/// granularity.
pub fn lpt_assign_grouped(costs: &[u64], group_keys: &[u64], n: usize) -> Vec<usize> {
    assert_eq!(
        costs.len(),
        group_keys.len(),
        "lpt_assign_grouped: every unit cost needs a group key"
    );
    assert!(
        n > 0,
        "lpt_assign_grouped: cannot partition over zero workers"
    );
    let mut groups: gfd_util::FxHashMap<u64, (u64, Vec<usize>)> = gfd_util::FxHashMap::default();
    for (i, (&c, &k)) in costs.iter().zip(group_keys).enumerate() {
        let entry = groups.entry(k).or_default();
        entry.0 += c;
        entry.1.push(i);
    }
    let mut group_list: Vec<(u64, Vec<usize>)> = groups.into_values().collect();
    group_list.sort_by_key(|(c, members)| (std::cmp::Reverse(*c), members[0]));
    let mut load = vec![0u64; n];
    let mut assignment = vec![0usize; costs.len()];
    for (cost, members) in group_list {
        // Invariant: the entry assert guarantees `0..n` is non-empty.
        let worker = (0..n).min_by_key(|&w| (load[w], w)).expect("n > 0");
        load[worker] += cost;
        for m in members {
            assignment[m] = worker;
        }
    }
    assignment
}

/// The makespan (largest per-worker cost sum) of an assignment.
pub fn makespan(costs: &[u64], assignment: &[usize], n: usize) -> u64 {
    assert_eq!(
        costs.len(),
        assignment.len(),
        "makespan: every unit cost needs an assigned worker"
    );
    let mut load = vec![0u64; n];
    for (i, &w) in assignment.iter().enumerate() {
        load[w] += costs[i];
    }
    load.into_iter().max().unwrap_or(0)
}

/// A lower bound on the optimal makespan:
/// `max(total/n rounded up, max single cost)`.
pub fn makespan_lower_bound(costs: &[u64], n: usize) -> u64 {
    assert!(n > 0, "makespan_lower_bound: zero workers have no makespan");
    let total: u64 = costs.iter().sum();
    let avg = total.div_ceil(n as u64);
    avg.max(costs.iter().copied().max().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example12_balanced_partition() {
        // Example 12: nine units sized {22,22,26,26,30,30,24,28,28}
        // over 3 processors → loads ~{76,78,82}.
        let costs = vec![22, 22, 26, 26, 30, 30, 24, 28, 28];
        let a = lpt_assign(&costs, 3);
        let ms = makespan(&costs, &a, 3);
        // LPT achieves a makespan within [ceil(236/3)=79, 82].
        assert!((79..=82).contains(&ms), "makespan {ms}");
    }

    #[test]
    fn lpt_within_two_approx() {
        let costs: Vec<u64> = (1..40).map(|i| (i * 37) % 101 + 1).collect();
        for n in [2usize, 4, 8] {
            let a = lpt_assign(&costs, n);
            let ms = makespan(&costs, &a, n);
            let lb = makespan_lower_bound(&costs, n);
            assert!(ms <= 2 * lb, "n={n}: makespan {ms} > 2×LB {lb}");
        }
    }

    #[test]
    fn lpt_beats_random_on_skew() {
        // A few huge units and many small ones: random placement piles up.
        let mut costs = vec![1000u64, 900, 800];
        costs.extend(std::iter::repeat_n(10, 60));
        let n = 4;
        let lpt = makespan(&costs, &lpt_assign(&costs, n), n);
        let rnd = makespan(&costs, &random_assign(costs.len(), n, 42), n);
        assert!(lpt <= rnd, "LPT {lpt} should not lose to random {rnd}");
    }

    #[test]
    fn random_assignment_in_range_and_deterministic() {
        let a = random_assign(100, 7, 1);
        let b = random_assign(100, 7, 1);
        assert_eq!(a, b);
        assert!(a.iter().all(|&w| w < 7));
        let c = random_assign(100, 7, 2);
        assert_ne!(a, c, "different seeds give different assignments");
    }

    #[test]
    fn empty_workload() {
        assert!(lpt_assign(&[], 3).is_empty());
        assert_eq!(makespan(&[], &[], 3), 0);
        assert_eq!(makespan_lower_bound(&[], 3), 0);
    }

    #[test]
    fn single_worker_gets_everything() {
        let costs = vec![5, 6, 7];
        let a = lpt_assign(&costs, 1);
        assert!(a.iter().all(|&w| w == 0));
        assert_eq!(makespan(&costs, &a, 1), 18);
    }
}
