//! Deterministic fault injection for the robustness harness.
//!
//! A [`FaultPlan`] is a pure function from coordinates — `(epoch,
//! unit, attempt)` — to injected failures, derived from a single
//! SplitMix64 seed. Nothing is sampled statefully: the same plan
//! replayed over the same workload injects exactly the same faults,
//! so a soak-test failure reproduces from its seed alone (the same
//! discipline as `gfd_util::prop`'s seed-replay harness).
//!
//! Three failure families, matching what a long-lived service actually
//! sees:
//!
//! * **worker panics** — a unit's execution panics mid-enumeration;
//!   transient ones succeed on retry, *sticky* ones panic on every
//!   attempt and must end in quarantine, not an abort and not a
//!   silent drop ([`FaultPlan::panic_attempts`]);
//! * **stragglers** — a unit sleeps before executing, so requeue and
//!   work-stealing paths run against genuinely slow workers
//!   ([`FaultPlan::straggle_for`]);
//! * **repair faults** — the incremental repair path panics or
//!   silently drifts at chosen epochs, exercising the
//!   catch-and-degrade and sampled-oracle paths
//!   ([`FaultPlan::repair_panics`], [`FaultPlan::drifts`]).
//!
//! Malformed-batch injection ([`FaultPlan::corrupts_batch`]) is
//! decided here but *performed by the test driver* (it corrupts a
//! copy of the batch before `ingest`); the service's only involvement
//! is rejecting what arrives.
//!
//! A fourth family targets the durable write-ahead log
//! (`gfd_parallel::wal`): **crash faults** ([`FaultPlan::crashes`])
//! kill the service at seed-chosen epochs and damage its on-disk log
//! the way real crashes do — an un-fsynced tail lost wholesale
//! ([`CrashKind::KillBeforeFsync`]), a frame cut mid-payload
//! ([`CrashKind::TornTail`]) or mid-header ([`CrashKind::ShortRead`]),
//! a flipped bit from media rot ([`CrashKind::BitFlip`]). Like the
//! malformed-batch family, the *decision* is pure seed arithmetic here
//! and the *damage* is performed by the kill-and-recover soak driver
//! on a copy of the log file; `wal::recover` must absorb all of it.

use std::time::Duration;

use gfd_util::Rng;

/// Deterministic fault-injection plan; see the module docs. The
/// default plan injects nothing — a service configured with
/// `FaultPlan::default()` behaves identically to one with no plan.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Root seed; every decision derives from it.
    pub seed: u64,
    /// Probability a unit's execution panics (first attempt).
    pub unit_panic_p: f64,
    /// Of panicking units, the fraction whose panic is *sticky*
    /// (recurs on every retry, forcing quarantine).
    pub sticky_p: f64,
    /// Probability a unit straggles (sleeps before executing).
    pub straggle_p: f64,
    /// How long a straggler sleeps.
    pub straggle: Duration,
    /// Probability the incremental repair path panics at an epoch.
    pub repair_panic_p: f64,
    /// Probability detector state silently drifts at an epoch (the
    /// sampled oracle is then pointed at the drifted rule, modeling a
    /// repair bug caught by the invariant check).
    pub drift_p: f64,
    /// Probability the driver corrupts a batch before ingest.
    pub malformed_batch_p: f64,
    /// Probability the service "crashes" right after committing an
    /// epoch (the soak driver kills it and damages the on-disk log per
    /// [`FaultPlan::crashes`]).
    pub crash_p: f64,
}

/// How a simulated crash damages the on-disk write-ahead log. The
/// soak driver performs the damage on a copy of the log file; the
/// recovery path must truncate and replay around all of it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CrashKind {
    /// The process dies with appended-but-unsynced frames still in the
    /// page cache: the file survives only up to the last fsync.
    KillBeforeFsync,
    /// The final frame is cut mid-payload (a partial write made it to
    /// disk before power loss).
    TornTail,
    /// One bit somewhere past the base snapshot flips (media rot /
    /// partial sector damage).
    BitFlip,
    /// The final frame is cut inside its *header* — shorter than any
    /// parseable record.
    ShortRead,
}

/// Domain-separation tags so the per-family decision streams are
/// independent even at identical coordinates.
const DOM_PANIC: u64 = 0x7001;
const DOM_STICKY: u64 = 0x7002;
const DOM_STRAGGLE: u64 = 0x7003;
const DOM_REPAIR: u64 = 0x7004;
const DOM_DRIFT: u64 = 0x7005;
const DOM_MALFORMED: u64 = 0x7006;
const DOM_CRASH: u64 = 0x7007;
const DOM_CRASH_KIND: u64 = 0x7008;
const DOM_CRASH_CUT: u64 = 0x7009;
const DOM_CRASH_FLIP: u64 = 0x700A;

impl FaultPlan {
    /// One uniform draw for `(domain, a, b)` — stateless and
    /// replay-stable.
    fn roll(&self, domain: u64, a: u64, b: u64) -> f64 {
        let mixed = self
            .seed
            .wrapping_add(domain.wrapping_mul(0x9E3779B97F4A7C15))
            .wrapping_add(a.wrapping_mul(0xBF58476D1CE4E5B9))
            .wrapping_add(b.wrapping_mul(0x94D049BB133111EB));
        Rng::seed_from_u64(mixed).next_f64()
    }

    /// How many leading attempts of `(epoch, unit)` panic: `0` for a
    /// healthy unit, `1` for a transient fault (the first retry
    /// succeeds), `u32::MAX` for a sticky fault (every attempt panics
    /// — the executor must quarantine and report it).
    pub fn panic_attempts(&self, epoch: u64, unit: usize) -> u32 {
        if self.unit_panic_p <= 0.0 || self.roll(DOM_PANIC, epoch, unit as u64) >= self.unit_panic_p
        {
            return 0;
        }
        if self.roll(DOM_STICKY, epoch, unit as u64) < self.sticky_p {
            u32::MAX
        } else {
            1
        }
    }

    /// The injected sleep of `(epoch, unit)`, if it straggles.
    pub fn straggle_for(&self, epoch: u64, unit: usize) -> Option<Duration> {
        if self.straggle_p > 0.0 && self.roll(DOM_STRAGGLE, epoch, unit as u64) < self.straggle_p {
            Some(self.straggle)
        } else {
            None
        }
    }

    /// True if the incremental repair path panics at `epoch`.
    pub fn repair_panics(&self, epoch: u64) -> bool {
        self.repair_panic_p > 0.0 && self.roll(DOM_REPAIR, epoch, 0) < self.repair_panic_p
    }

    /// True if detector state drifts at `epoch`.
    pub fn drifts(&self, epoch: u64) -> bool {
        self.drift_p > 0.0 && self.roll(DOM_DRIFT, epoch, 0) < self.drift_p
    }

    /// True if the driver should corrupt the batch for `epoch` before
    /// ingesting it (the service must reject it and leave the epoch
    /// untouched).
    pub fn corrupts_batch(&self, epoch: u64) -> bool {
        self.malformed_batch_p > 0.0 && self.roll(DOM_MALFORMED, epoch, 0) < self.malformed_batch_p
    }

    /// Whether the service crashes right after committing `epoch`, and
    /// if so how the crash damages the log file. Pure seed arithmetic:
    /// the same plan crashes at the same epochs in the same ways.
    pub fn crashes(&self, epoch: u64) -> Option<CrashKind> {
        if self.crash_p <= 0.0 || self.roll(DOM_CRASH, epoch, 0) >= self.crash_p {
            return None;
        }
        let kind = match (self.roll(DOM_CRASH_KIND, epoch, 0) * 4.0) as u32 {
            0 => CrashKind::KillBeforeFsync,
            1 => CrashKind::TornTail,
            2 => CrashKind::BitFlip,
            _ => CrashKind::ShortRead,
        };
        Some(kind)
    }

    /// A uniform draw in `[0, 1)` for where a crash at `epoch` cuts or
    /// flips — the soak driver scales it onto the file region the
    /// [`CrashKind`] targets. Separate domains keep cut points and
    /// flip positions independent of the crash decision itself.
    pub fn crash_cut_point(&self, epoch: u64) -> f64 {
        self.roll(DOM_CRASH_CUT, epoch, 0)
    }

    /// Which bit (0–7) a [`CrashKind::BitFlip`] crash at `epoch`
    /// flips at its chosen byte.
    pub fn crash_flip_bit(&self, epoch: u64) -> u32 {
        (self.roll(DOM_CRASH_FLIP, epoch, 0) * 8.0) as u32 & 7
    }
}

/// Silences the default panic-hook output for the many *injected*
/// panics a fault test triggers, forwarding everything else. Test
/// plumbing shared by the executor/service tests and the soak
/// harness — not part of the public API.
#[doc(hidden)]
pub fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected"));
            if !injected {
                default(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_injects_nothing() {
        let p = FaultPlan::default();
        for epoch in 0..50 {
            assert!(!p.repair_panics(epoch));
            assert!(!p.drifts(epoch));
            assert!(!p.corrupts_batch(epoch));
            assert_eq!(p.crashes(epoch), None);
            for unit in 0..50 {
                assert_eq!(p.panic_attempts(epoch, unit), 0);
                assert!(p.straggle_for(epoch, unit).is_none());
            }
        }
    }

    #[test]
    fn decisions_are_replay_stable_and_seed_sensitive() {
        let mk = |seed| FaultPlan {
            seed,
            unit_panic_p: 0.5,
            sticky_p: 0.5,
            straggle_p: 0.5,
            straggle: Duration::from_millis(1),
            repair_panic_p: 0.5,
            drift_p: 0.5,
            malformed_batch_p: 0.5,
            crash_p: 0.5,
        };
        let (a, b, c) = (mk(1), mk(1), mk(2));
        let fingerprint = |p: &FaultPlan| {
            (0..64u64)
                .map(|e| {
                    (0..8usize)
                        .map(|u| p.panic_attempts(e, u).min(2) as u64)
                        .sum::<u64>()
                        + p.repair_panics(e) as u64
                        + match p.crashes(e) {
                            None => 0,
                            Some(k) => 16 + k as u64,
                        }
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(fingerprint(&a), fingerprint(&b), "same seed must replay");
        assert_ne!(fingerprint(&a), fingerprint(&c), "seeds must differ");
    }

    #[test]
    fn probability_one_is_certain_and_sticky() {
        let p = FaultPlan {
            unit_panic_p: 1.0,
            sticky_p: 1.0,
            ..Default::default()
        };
        for unit in 0..20 {
            assert_eq!(p.panic_attempts(7, unit), u32::MAX);
        }
    }

    #[test]
    fn crash_family_covers_all_kinds_and_bounds_its_draws() {
        let p = FaultPlan {
            seed: 0xC0FFEE,
            crash_p: 1.0,
            ..Default::default()
        };
        let mut seen = std::collections::HashSet::new();
        for epoch in 0..200 {
            let kind = p.crashes(epoch).expect("crash_p = 1.0 always crashes");
            seen.insert(std::mem::discriminant(&kind));
            let cut = p.crash_cut_point(epoch);
            assert!((0.0..1.0).contains(&cut), "cut point out of range: {cut}");
            assert!(p.crash_flip_bit(epoch) < 8);
        }
        assert_eq!(seen.len(), 4, "200 epochs must hit every crash kind");
    }
}
