//! Optimization strategies (appendix).
//!
//! * **Workload reduction**: drop rules implied by the rest of `Σ`
//!   (`Σ \ {ϕ} ⊨ ϕ` ⇒ `Vio` unchanged). Delegates to
//!   [`gfd_core::implication`], guarded by a size cap so reasoning
//!   never dominates detection.
//! * **Replicate-and-split for skewed graphs**: work units whose data
//!   block exceeds a threshold `θ` are replicated into sub-units that
//!   share the enumeration cost across processors and ship partial
//!   matches instead of whole blocks.

use gfd_core::implication::minimize;
use gfd_core::GfdSet;

use crate::workload::WorkUnit;

/// Applies implication-based workload reduction when `‖Σ‖` is within
/// `cap` (the analysis is NP-complete; the cap keeps the coordinator
/// cost negligible, as in the paper's heuristic use). Returns the
/// reduced set and the seconds spent.
pub fn reduce_workload(sigma: &GfdSet, cap: usize) -> (GfdSet, f64) {
    if sigma.len() > cap {
        return (sigma.clone(), 0.0);
    }
    let start = std::time::Instant::now();
    let reduced = minimize(sigma);
    (reduced, start.elapsed().as_secs_f64())
}

/// A unit after skew splitting: `share`/`of` describe which slice of
/// the replicated unit this entry carries.
#[derive(Clone, Copy, Debug)]
pub struct SplitUnit {
    /// The underlying unit (same pivots/blocks for all shares — the
    /// descriptor points into the workload's shared slot arena).
    pub unit: WorkUnit,
    /// Index of the original unit in the pre-split workload (shares of
    /// one unit agree), used to spread the measured enumeration time
    /// over the shares.
    pub unit_index: usize,
    /// Share index in `0..of`.
    pub share: usize,
    /// Total shares the unit was split into (1 = not split).
    pub of: usize,
}

impl SplitUnit {
    /// Estimated cost of this share.
    pub fn cost(&self) -> u64 {
        (self.unit.cost / self.of as u64).max(1)
    }
}

/// Splits units whose block size exceeds `threshold` into
/// `ceil(cost/threshold)` shares ("replicate `w` with the same `z̄`,
/// but split `G_z̄`"). With `threshold = None`, every unit gets a
/// single share. Units are arena descriptors, so every share is a
/// plain copy — splitting never touches the heap beyond the output
/// vector itself.
pub fn split_large_units(units: &[WorkUnit], threshold: Option<u64>) -> Vec<SplitUnit> {
    let mut out = Vec::with_capacity(units.len());
    for (unit_index, &unit) in units.iter().enumerate() {
        let parts = match threshold {
            Some(theta) if theta > 0 && unit.cost > theta => unit.cost.div_ceil(theta) as usize,
            _ => 1,
        };
        for share in 0..parts {
            out.push(SplitUnit {
                unit,
                unit_index,
                share,
                of: parts,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(cost: u64) -> WorkUnit {
        WorkUnit {
            rule: 0,
            slot_offset: 0,
            slot_len: 1,
            check_both_orientations: false,
            cost,
        }
    }

    #[test]
    fn small_units_untouched() {
        let split = split_large_units(&[unit(10), unit(20)], Some(50));
        assert_eq!(split.len(), 2);
        assert!(split.iter().all(|s| s.of == 1));
        assert_eq!(split[0].cost(), 10);
    }

    #[test]
    fn large_units_split_proportionally() {
        let split = split_large_units(&[unit(100)], Some(30));
        assert_eq!(split.len(), 4); // ceil(100/30)
        assert!(split.iter().all(|s| s.of == 4));
        assert_eq!(split[0].cost(), 25);
        let shares: Vec<usize> = split.iter().map(|s| s.share).collect();
        assert_eq!(shares, vec![0, 1, 2, 3]);
    }

    #[test]
    fn no_threshold_means_no_split() {
        let split = split_large_units(&[unit(1_000_000)], None);
        assert_eq!(split.len(), 1);
        assert_eq!(split[0].of, 1);
    }

    #[test]
    fn reduction_respects_cap() {
        use gfd_core::{Dependency, Gfd, Literal};
        use gfd_pattern::{PatternBuilder, VarId};
        let vocab = gfd_graph::Vocab::shared();
        let a = vocab.intern("A");
        let mk = |name: &str| {
            let mut b = PatternBuilder::new(vocab.clone());
            b.node("x", "t");
            Gfd::new(
                name,
                b.build(),
                Dependency::always(vec![Literal::const_eq(VarId(0), a, "v")]),
            )
        };
        // Two identical rules: unreduced when over the cap…
        let sigma = GfdSet::new(vec![mk("a"), mk("b")]);
        let (reduced, secs) = reduce_workload(&sigma, 1);
        assert_eq!(reduced.len(), 2);
        assert_eq!(secs, 0.0);
        // …and deduplicated when within it.
        let (reduced, _) = reduce_workload(&sigma, 10);
        assert_eq!(reduced.len(), 1);
    }
}
