//! Executing a work unit: local error detection (`localVio`, §6.1).
//!
//! For a unit `⟨v̄_z, G_z̄⟩` of rule `ϕ`, enumerate matches `h(x̄)` of
//! `ϕ`'s pattern that include `v̄_z` — pinned per component at the
//! pivot candidate and restricted to the candidate's data block — and
//! record every match with `h ⊨ X`, `h ⊭ Y`.
//!
//! When a unit stems from the symmetric-pair dedup (Example 10), both
//! pivot orientations are checked here, so the deduplication never
//! loses violations.
//!
//! The *multi-query* optimization (appendix, following [31]) caches
//! per-(component-isomorphism-class, pivot) match **tables**: rules
//! mined from shared frequent features share components, and the cache
//! lets all of them reuse one enumeration. Cached enumerations are
//! flat [`MatchTable`]s shared behind `Arc`; an isomorphic twin reads
//! a hit through a precomputed column-permutation [`TableView`] — an
//! `O(arity)` header rewrite, never a row copy — and the disjointness
//! join streams straight over the shared rows. Together with the
//! per-worker [`UnitScratch`], a warm [`execute_unit`] call performs
//! **zero heap allocations** (asserted by the `alloc_probe` test and
//! the `alloc/unit_exec_steady_state` bench sample).

use std::collections::VecDeque;
use std::sync::Arc;

use gfd_core::validate::match_satisfies;
use gfd_core::{GfdSet, Violation};
use gfd_graph::{Graph, NodeId, NodeSet};
use gfd_match::component::ComponentSearch;
use gfd_match::join::{join_tables, JoinInputs, JoinScratch};
use gfd_match::table::{MatchTable, TableView};
use gfd_match::types::Flow;
use gfd_match::Match;
use gfd_pattern::{canonical_form, VarId};
use gfd_util::FxHashMap;

use crate::workload::{ComponentPlan, PivotedRule, UnitSlot, WorkUnit};

/// Cross-rule index of isomorphic components for the multi-query
/// optimization.
#[derive(Debug)]
pub struct MultiQueryIndex {
    /// One entry per `(rule, component)`.
    entries: Vec<Vec<MqiEntry>>,
    /// Representative `(rule, comp)` per class id.
    reps: Vec<(usize, usize)>,
}

/// One component's multi-query metadata: its isomorphism class, the
/// pivot translated into representative order (the cache-key
/// variable), and the column permutation onto the representative
/// (`None` = identity).
#[derive(Debug)]
struct MqiEntry {
    class: usize,
    rep_pin: VarId,
    perm: Option<Arc<[u32]>>,
}

impl MultiQueryIndex {
    /// Groups all components of all rules into exact-label isomorphism
    /// classes, keyed by complete canonical codes — no 64-bit
    /// signature-collision exposure, and the canonical orders compose
    /// into the comp-var → rep-var witness that becomes each member's
    /// cached **column permutation**: built once here, a cache hit
    /// reuses it as a shared view header with no per-hit work. (The
    /// earlier embedding-based check could pair a wildcard variable
    /// with a labeled one, whose match sets differ — exact labels make
    /// cache reuse sound by construction.)
    pub fn build(plans: &[PivotedRule]) -> Self {
        let mut entries: Vec<Vec<MqiEntry>> = Vec::with_capacity(plans.len());
        let mut reps: Vec<(usize, usize)> = Vec::new();
        let mut by_code: FxHashMap<Vec<u64>, usize> = FxHashMap::default();
        let mut rep_forms: Vec<gfd_pattern::CanonicalForm> = Vec::new();
        for (ri, rule) in plans.iter().enumerate() {
            let mut per_comp = Vec::with_capacity(rule.components.len());
            for (ci, comp) in rule.components.iter().enumerate() {
                let form = canonical_form(&comp.pattern);
                let entry = match by_code.get(form.code()) {
                    Some(&class) => {
                        let map = form.witness_onto(&rep_forms[class]).into_map();
                        let rep_pin = map[comp.local_pivot.index()];
                        let identity = map.iter().enumerate().all(|(i, v)| v.index() == i);
                        let perm = (!identity)
                            .then(|| map.iter().map(|v| v.index() as u32).collect::<Arc<[u32]>>());
                        MqiEntry {
                            class,
                            rep_pin,
                            perm,
                        }
                    }
                    None => {
                        let class = reps.len();
                        reps.push((ri, ci));
                        by_code.insert(form.code().to_vec(), class);
                        rep_forms.push(form);
                        // The representative views its own table
                        // identically, pinned at its own pivot.
                        MqiEntry {
                            class,
                            rep_pin: comp.local_pivot,
                            perm: None,
                        }
                    }
                };
                per_comp.push(entry);
            }
            entries.push(per_comp);
        }
        MultiQueryIndex { entries, reps }
    }

    /// Number of isomorphism classes (≤ total components).
    pub fn class_count(&self) -> usize {
        self.reps.len()
    }
}

/// Hit/miss/eviction counters of a [`MatchCache`], aggregated into
/// [`crate::metrics::ParallelReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Enumerations served from the cache.
    pub hits: u64,
    /// Enumerations that had to run.
    pub misses: u64,
    /// Tables evicted by the byte cap.
    pub evictions: u64,
}

impl std::ops::AddAssign for CacheStats {
    fn add_assign(&mut self, o: CacheStats) {
        self.hits += o.hits;
        self.misses += o.misses;
        self.evictions += o.evictions;
    }
}

/// Default [`MatchCache`] capacity: enough for every workload in the
/// experiment suite, small enough that a long-lived worker stays
/// bounded (32 MiB of match rows per worker).
pub const DEFAULT_MATCH_CACHE_BYTES: usize = 32 << 20;

/// Per-worker cache of pinned component enumerations, keyed by
/// `(class, rep pin var, pivot node)`. Values are shared flat tables:
/// a hit is two `Arc` bumps, never a row copy.
///
/// The cache is **size-capped on table bytes** with FIFO eviction — a
/// worker that streams millions of units over a skewed pivot
/// distribution holds at most `max_bytes` of match rows, and
/// [`CacheStats`] surfaces the hit/miss/eviction counts for the
/// optimization-effect reports.
pub struct MatchCache {
    map: FxHashMap<(usize, VarId, NodeId), Arc<MatchTable>>,
    /// Insertion order, for eviction.
    queue: VecDeque<(usize, VarId, NodeId)>,
    /// Current total of `data_bytes` over cached tables.
    bytes: usize,
    max_bytes: usize,
    /// Cache hits, for optimization-effect reporting.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Evictions forced by the byte cap.
    pub evictions: u64,
}

impl Default for MatchCache {
    fn default() -> Self {
        Self::with_capacity_bytes(DEFAULT_MATCH_CACHE_BYTES)
    }
}

impl MatchCache {
    /// A cache with the default byte cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache holding at most `max_bytes` of match-table rows.
    pub fn with_capacity_bytes(max_bytes: usize) -> Self {
        MatchCache {
            map: FxHashMap::default(),
            queue: VecDeque::new(),
            bytes: 0,
            max_bytes,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The counters as one record.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }

    /// Bytes of match rows currently held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Inserts a freshly enumerated table, evicting oldest entries
    /// until the byte cap holds (the newest entry is always kept —
    /// evicting what was just computed would thrash).
    fn insert(&mut self, key: (usize, VarId, NodeId), table: Arc<MatchTable>) {
        let b = table.data_bytes();
        while self.bytes + b > self.max_bytes {
            let Some(old) = self.queue.pop_front() else {
                break;
            };
            if let Some(t) = self.map.remove(&old) {
                self.bytes -= t.data_bytes();
                self.evictions += 1;
            }
        }
        self.bytes += b;
        self.queue.push_back(key);
        self.map.insert(key, table);
    }
}

/// Enumerates the matches of one component pinned at `pivot` inside
/// `block`, via the cache when an index is supplied. The returned view
/// shares the cached table (column-permuted for non-representative
/// members) — no rows are copied on either hits or misses.
#[allow(clippy::too_many_arguments)]
fn component_matches(
    g: &Graph,
    plans: &[PivotedRule],
    rule: usize,
    comp: usize,
    pivot: NodeId,
    block: &NodeSet,
    mqi: Option<&MultiQueryIndex>,
    cache: &mut MatchCache,
) -> TableView {
    let plan = &plans[rule].components[comp];
    if let Some(mqi) = mqi {
        let entry = &mqi.entries[rule][comp];
        let key = (entry.class, entry.rep_pin, pivot);
        let table = match cache.map.get(&key) {
            Some(hit) => {
                cache.hits += 1;
                hit.clone()
            }
            None => {
                cache.misses += 1;
                let (rr, rc) = mqi.reps[entry.class];
                let rep_plan = &plans[rr].components[rc];
                let mut table = MatchTable::new(rep_plan.pattern.node_count());
                ComponentSearch::new(&rep_plan.pattern, g)
                    .pin(entry.rep_pin, pivot)
                    .restrict(block)
                    .collect_into(&mut table);
                let table = Arc::new(table);
                cache.insert(key, table.clone());
                table
            }
        };
        return match &entry.perm {
            Some(p) => TableView::permuted(table, p.clone()),
            None => TableView::identity(table),
        };
    }
    let mut table = MatchTable::new(plan.pattern.node_count());
    ComponentSearch::new(&plan.pattern, g)
        .pin(plan.local_pivot, pivot)
        .restrict(block)
        .collect_into(&mut table);
    TableView::identity(Arc::new(table))
}

/// Per-worker reusable execution state: the per-component table views
/// of the unit in flight, the join's backtracking scratch, and the
/// orientation buffer. One instance per worker makes warm
/// [`execute_unit`] calls allocation-free.
#[derive(Default)]
pub struct UnitScratch {
    views: Vec<TableView>,
    join: JoinScratch,
    orient_buf: Vec<usize>,
}

impl UnitScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The join's zero-allocation adapter: component `i` contributes its
/// original variables and the (possibly permuted) view of its cached
/// table.
struct UnitJoin<'a> {
    comps: &'a [ComponentPlan],
    views: &'a [TableView],
}

impl JoinInputs for UnitJoin<'_> {
    fn count(&self) -> usize {
        self.views.len()
    }
    fn vars(&self, i: usize) -> &[VarId] {
        &self.comps[i].orig_vars
    }
    fn table(&self, i: usize) -> &MatchTable {
        self.views[i].table()
    }
    fn perm(&self, i: usize) -> Option<&[u32]> {
        self.views[i].perm()
    }
}

/// Executes one work unit (whose slots live in `slots` — the owning
/// workload's arena), appending violations to `out`.
#[allow(clippy::too_many_arguments)]
pub fn execute_unit(
    g: &Graph,
    sigma: &GfdSet,
    plans: &[PivotedRule],
    slots: &[UnitSlot],
    unit: &WorkUnit,
    mqi: Option<&MultiQueryIndex>,
    cache: &mut MatchCache,
    scratch: &mut UnitScratch,
    out: &mut Vec<Violation>,
) {
    let rule = &plans[unit.rule()];
    let gfd = sigma.get(unit.rule());
    let k = rule.components.len();
    debug_assert_eq!(k, unit.k(), "one slot per component");
    let unit_slots = unit.slots(slots);
    let nvars = gfd.pattern.node_count();
    let UnitScratch {
        views,
        join,
        orient_buf,
    } = scratch;

    let emit = |views: &[TableView], join: &mut JoinScratch, out: &mut Vec<Violation>| {
        let inputs = UnitJoin {
            comps: &rule.components,
            views,
        };
        join_tables(&inputs, nvars, join, &mut |assignment| {
            if !match_satisfies(&gfd.dep, g, assignment) {
                out.push(Violation {
                    rule: unit.rule(),
                    mapping: Match(assignment.to_vec()),
                });
            }
            Flow::Continue
        });
    };

    // Symmetric-pair fast path: both components are in one isomorphism
    // class with one rep pin, so orientation 2's cached tables are
    // exactly orientation 1's *swapped* — swap the shared tables and
    // re-wrap them in each component's own column permutation instead
    // of paying two more cache probes and view builds.
    if unit.check_both_orientations && k == 2 {
        if let Some(mqi) = mqi {
            let e0 = &mqi.entries[unit.rule()][0];
            let e1 = &mqi.entries[unit.rule()][1];
            if e0.class == e1.class && e0.rep_pin == e1.rep_pin {
                let (s0, s1) = (&unit_slots[0], &unit_slots[1]);
                let v0 = component_matches(
                    g,
                    plans,
                    unit.rule(),
                    0,
                    s0.pivot,
                    &s0.block,
                    Some(mqi),
                    cache,
                );
                let v1 = component_matches(
                    g,
                    plans,
                    unit.rule(),
                    1,
                    s1.pivot,
                    &s1.block,
                    Some(mqi),
                    cache,
                );
                let rewrap = |t: &Arc<MatchTable>, perm: &Option<Arc<[u32]>>| match perm {
                    Some(p) => TableView::permuted(t.clone(), p.clone()),
                    None => TableView::identity(t.clone()),
                };
                if !v0.is_empty() && !v1.is_empty() {
                    views.clear();
                    views.push(v0.clone());
                    views.push(v1.clone());
                    emit(views, join, out);
                    // Orientation (1, 0): component 0 reads the table
                    // cached at pivot 1 and vice versa.
                    views.clear();
                    views.push(rewrap(v1.table(), &e0.perm));
                    views.push(rewrap(v0.table(), &e1.perm));
                    emit(views, join, out);
                }
                // Don't let stale views pin evicted tables past this
                // unit (the scratch outlives the cache's byte cap).
                views.clear();
                return;
            }
        }
    }

    // Pivot orientations to check within this unit.
    const BOTH: [&[usize]; 2] = [&[0, 1], &[1, 0]];
    orient_buf.clear();
    orient_buf.extend(0..k);
    let identity = [orient_buf.as_slice()];
    let orientations: &[&[usize]] = if unit.check_both_orientations && k == 2 {
        &BOTH
    } else {
        &identity
    };

    for &orient in orientations {
        // Component i is pinned at pivot orient[i] and searched in that
        // pivot's block.
        views.clear();
        let mut dead = false;
        for (i, &slot) in orient.iter().enumerate() {
            let s = &unit_slots[slot];
            let view = component_matches(g, plans, unit.rule(), i, s.pivot, &s.block, mqi, cache);
            if view.is_empty() {
                dead = true;
                break;
            }
            views.push(view);
        }
        if dead {
            continue;
        }
        emit(views, join, out);
    }
    views.clear();
}

/// Canonical ordering for violation sets, so different schedules can
/// be compared for equality. (Unstable sort: the `(rule, nodes)` key
/// is total — equal keys mean equal violations.)
pub fn sort_violations(v: &mut [Violation]) {
    v.sort_unstable_by(|a, b| {
        a.rule
            .cmp(&b.rule)
            .then_with(|| a.mapping.nodes().cmp(b.mapping.nodes()))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{estimate_workload, plan_rules, WorkloadOptions};
    use gfd_core::validate::detect_violations;
    use gfd_core::{Dependency, Gfd, Literal};
    use gfd_graph::{Value, Vocab};
    use gfd_pattern::PatternBuilder;
    use std::sync::Arc;

    /// Flights with duplicate ids but mismatched destinations.
    fn flights(n_dup: usize) -> Graph {
        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        for i in 0..6 {
            let f = b.add_node_labeled("flight");
            let id = b.add_node_labeled("id");
            let to = b.add_node_labeled("city");
            b.add_edge_labeled(f, id, "number");
            b.add_edge_labeled(f, to, "to");
            let idv = if i < n_dup {
                "DUP".to_string()
            } else {
                format!("FL{i}")
            };
            b.set_attr_named(id, "val", Value::str(&idv));
            b.set_attr_named(to, "val", Value::str(&format!("City{i}")));
        }
        b.freeze()
    }

    fn phi_same_id_same_dest(vocab: Arc<Vocab>) -> Gfd {
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "flight");
        let x1 = b.node("x1", "id");
        let x2 = b.node("x2", "city");
        b.edge(x, x1, "number");
        b.edge(x, x2, "to");
        let y = b.node("y", "flight");
        let y1 = b.node("y1", "id");
        let y2 = b.node("y2", "city");
        b.edge(y, y1, "number");
        b.edge(y, y2, "to");
        let q = b.build();
        let val = vocab.intern("val");
        Gfd::new(
            "same-id-same-dest",
            q,
            Dependency::new(
                vec![Literal::var_eq(x1, val, y1, val)],
                vec![Literal::var_eq(x2, val, y2, val)],
            ),
        )
    }

    fn run_all_units_with_cache(
        g: &Graph,
        sigma: &GfdSet,
        mq: bool,
        mut cache: MatchCache,
    ) -> (Vec<Violation>, MatchCache) {
        let plans = plan_rules(sigma);
        let wl = estimate_workload(sigma, g, &WorkloadOptions::default());
        let mqi = mq.then(|| MultiQueryIndex::build(&plans));
        let mut scratch = UnitScratch::new();
        let mut out = Vec::new();
        for u in &wl.units {
            execute_unit(
                g,
                sigma,
                &plans,
                &wl.slots,
                u,
                mqi.as_ref(),
                &mut cache,
                &mut scratch,
                &mut out,
            );
        }
        (out, cache)
    }

    fn run_all_units(g: &Graph, sigma: &GfdSet, mq: bool) -> (Vec<Violation>, MatchCache) {
        run_all_units_with_cache(g, sigma, mq, MatchCache::new())
    }

    #[test]
    fn unit_execution_equals_detvio() {
        let g = flights(3);
        let sigma = GfdSet::new(vec![phi_same_id_same_dest(g.vocab().clone())]);
        let mut expected = detect_violations(&sigma, &g);
        let (mut got, _) = run_all_units(&g, &sigma, false);
        sort_violations(&mut expected);
        sort_violations(&mut got);
        assert_eq!(expected.len(), 6, "3 duplicate flights, ordered pairs");
        assert_eq!(got, expected);
    }

    #[test]
    fn multi_query_cache_gives_same_answers_and_hits() {
        let g = flights(3);
        let sigma = GfdSet::new(vec![phi_same_id_same_dest(g.vocab().clone())]);
        let (mut plain, _) = run_all_units(&g, &sigma, false);
        let (mut cached, cache) = run_all_units(&g, &sigma, true);
        sort_violations(&mut plain);
        sort_violations(&mut cached);
        assert_eq!(plain, cached);
        assert!(
            cache.hits > 0,
            "isomorphic components must share enumerations"
        );
    }

    #[test]
    fn multi_query_index_collapses_shared_components() {
        let g = flights(0);
        let vocab = g.vocab().clone();
        // Two distinct rules over the same star component.
        let sigma = GfdSet::new(vec![
            phi_same_id_same_dest(vocab.clone()),
            phi_same_id_same_dest(vocab),
        ]);
        let plans = plan_rules(&sigma);
        let mqi = MultiQueryIndex::build(&plans);
        // 4 components total, all isomorphic → 1 class.
        assert_eq!(mqi.class_count(), 1);
    }

    #[test]
    fn no_false_positives_on_clean_graph() {
        let g = flights(0);
        let sigma = GfdSet::new(vec![phi_same_id_same_dest(g.vocab().clone())]);
        let (got, _) = run_all_units(&g, &sigma, true);
        assert!(got.is_empty());
    }

    /// A byte-capped cache keeps answers identical and records
    /// evictions; an uncapped run of the same workload evicts nothing.
    #[test]
    fn capped_cache_evicts_but_stays_correct() {
        let g = flights(3);
        let sigma = GfdSet::new(vec![phi_same_id_same_dest(g.vocab().clone())]);
        let (mut plain, big) = run_all_units(&g, &sigma, true);
        assert_eq!(big.evictions, 0, "default cap must hold this workload");
        // Cap below a single table's bytes: every insert evicts.
        let (mut tiny_out, tiny) =
            run_all_units_with_cache(&g, &sigma, true, MatchCache::with_capacity_bytes(16));
        sort_violations(&mut plain);
        sort_violations(&mut tiny_out);
        assert_eq!(plain, tiny_out);
        assert!(tiny.evictions > 0, "tiny cap must evict");
        assert!(tiny.bytes() <= 16 + tiny.map.values().map(|t| t.data_bytes()).max().unwrap_or(0));
        assert!(
            tiny.stats().misses > big.stats().misses,
            "evicted entries must be re-enumerated"
        );
    }

    /// The multi-query regression the flat tables exist for: a cache
    /// hit whose member has a **non-identity** witness must reuse the
    /// cached table by pointer (a permuted view), not re-materialize
    /// the rows.
    #[test]
    fn non_identity_witness_hit_copies_no_table() {
        // A path graph s → m → t: the path pattern's pivot is forced to
        // the middle variable (radius 1 vs 2), so twin rules share the
        // cache key whatever their declaration order.
        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        let s = b.add_node_labeled("src");
        let m = b.add_node_labeled("mid");
        let t = b.add_node_labeled("dst");
        b.add_edge_labeled(s, m, "e1");
        b.add_edge_labeled(m, t, "e2");
        let g = b.freeze();
        let vocab = g.vocab().clone();
        // Twin single-component rules whose variables are declared in
        // opposite orders, so the canonical witness between them is a
        // non-identity permutation.
        let path_fwd = {
            let mut pb = PatternBuilder::new(vocab.clone());
            let a = pb.node("a", "src");
            let bb = pb.node("b", "mid");
            let c = pb.node("c", "dst");
            pb.edge(a, bb, "e1");
            pb.edge(bb, c, "e2");
            pb.build()
        };
        let path_rev = {
            let mut pb = PatternBuilder::new(vocab.clone());
            let c = pb.node("c", "dst");
            let bb = pb.node("b", "mid");
            let a = pb.node("a", "src");
            pb.edge(a, bb, "e1");
            pb.edge(bb, c, "e2");
            pb.build()
        };
        let val = vocab.intern("val");
        let mk = |name: &str, q: gfd_pattern::Pattern| {
            let v = q.var_by_name("a").unwrap();
            Gfd::new(
                name,
                q,
                Dependency::always(vec![Literal::var_eq(v, val, v, val)]),
            )
        };
        let sigma = GfdSet::new(vec![mk("fwd", path_fwd), mk("rev", path_rev)]);
        let plans = plan_rules(&sigma);
        let mqi = MultiQueryIndex::build(&plans);
        assert_eq!(mqi.class_count(), 1, "twins must share a class");
        assert!(
            mqi.entries[1][0].perm.is_some(),
            "reversed declaration ⇒ non-identity witness"
        );

        let mut cache = MatchCache::new();
        let block = gfd_graph::NodeSet::from_vec(g.nodes().collect());
        let v1 = component_matches(&g, &plans, 0, 0, m, &block, Some(&mqi), &mut cache);
        let v2 = component_matches(&g, &plans, 1, 0, m, &block, Some(&mqi), &mut cache);
        assert_eq!(cache.hits, 1, "second call must hit");
        assert!(
            Arc::ptr_eq(v1.table(), v2.table()),
            "hit must share the cached table, not copy it"
        );
        assert!(v2.perm().is_some(), "twin reads through a permuted view");
        assert_eq!(v1.len(), 1, "premise: the path matches once");
        // And the permuted view really is the remapped enumeration:
        // rule 0 reads (a=s, b=m, c=t); rule 1 declared (c, b, a), so
        // its logical columns are (c=t, b=m, a=s).
        let q0 = &plans[0].components[0].pattern;
        let q1 = &plans[1].components[0].pattern;
        assert_eq!(v1.get(0, q0.var_by_name("a").unwrap().index()), s);
        assert_eq!(v1.get(0, q0.var_by_name("b").unwrap().index()), m);
        assert_eq!(v1.get(0, q0.var_by_name("c").unwrap().index()), t);
        assert_eq!(v2.get(0, q1.var_by_name("a").unwrap().index()), s);
        assert_eq!(v2.get(0, q1.var_by_name("b").unwrap().index()), m);
        assert_eq!(v2.get(0, q1.var_by_name("c").unwrap().index()), t);
    }
}
