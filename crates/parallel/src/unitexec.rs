//! Executing a work unit: local error detection (`localVio`, §6.1).
//!
//! For a unit `⟨v̄_z, G_z̄⟩` of rule `ϕ`, enumerate matches `h(x̄)` of
//! `ϕ`'s pattern that include `v̄_z` — pinned per component at the
//! pivot candidate and restricted to the candidate's data block — and
//! record every match with `h ⊨ X`, `h ⊭ Y`.
//!
//! When a unit stems from the symmetric-pair dedup (Example 10), both
//! pivot orientations are checked here, so the deduplication never
//! loses violations.
//!
//! The *multi-query* optimization (appendix, following [31]) reads
//! per-(component-isomorphism-class, pivot) match **tables** from the
//! shared [`ClassRegistry`] serving tier: rules mined from shared
//! frequent features share components, and the registry lets all of
//! them — across *all workers and tenants*, not per worker — reuse one
//! enumeration. Cached enumerations are flat [`MatchTable`]s shared
//! behind `Arc`; an isomorphic twin reads a hit through a precomputed
//! column-permutation [`TableView`] — an `O(arity)` header rewrite,
//! never a row copy — and the disjointness join streams straight over
//! the shared rows. Eviction is the registry's LRU + refcount-aware
//! pass: a view held by an in-flight unit is never invalidated under
//! it. Together with the per-worker [`UnitScratch`], a warm
//! [`execute_unit`] call performs **zero heap allocations** (asserted
//! by the `alloc_probe` test and the `alloc/unit_exec_steady_state`
//! bench sample).

use std::sync::Arc;

use gfd_core::validate::match_satisfies;
use gfd_core::{GfdSet, Violation};
use gfd_graph::{Graph, NodeId};
use gfd_match::component::ComponentSearch;
use gfd_match::join::{join_tables, JoinInputs, JoinScratch};
use gfd_match::table::{MatchTable, TableView};
use gfd_match::types::Flow;
use gfd_match::{ClassRegistry, Match, SpaceHandle};
use gfd_pattern::VarId;

pub use gfd_match::CacheStats;

use crate::workload::{ComponentPlan, PivotedRule, UnitSlot, WorkUnit};

/// Cross-rule index of isomorphic components for the multi-query
/// optimization: per `(rule, component)`, the component's
/// [`ClassRegistry`] handle plus the precomputed symmetric-pair
/// metadata (class id, representative pin, column permutation).
#[derive(Debug)]
pub struct MultiQueryIndex {
    /// One entry per `(rule, component)`.
    entries: Vec<Vec<MqiEntry>>,
    /// Distinct isomorphism classes among this Σ's components (the
    /// shared registry may hold more, from other tenants).
    classes: usize,
}

/// One component's multi-query metadata. The registry owns the cache
/// keys and permutations; this caches the lookups that the symmetric
/// fast path needs without taking the registry lock.
#[derive(Debug)]
struct MqiEntry {
    handle: SpaceHandle,
    class: usize,
    rep_pin: VarId,
    perm: Option<Arc<[u32]>>,
}

impl MultiQueryIndex {
    /// Registers all components of all rules into the shared registry,
    /// which groups them into exact-label isomorphism classes keyed by
    /// complete canonical codes — no 64-bit signature-collision
    /// exposure, and the canonical orders compose into the comp-var →
    /// rep-var witness that becomes each member's cached **column
    /// permutation**: built once here, a cache hit reuses it as a
    /// shared view header with no per-hit work.
    pub fn build(plans: &[PivotedRule], registry: &ClassRegistry) -> Self {
        let mut entries: Vec<Vec<MqiEntry>> = Vec::with_capacity(plans.len());
        let mut classes: Vec<usize> = Vec::new();
        for rule in plans {
            let mut per_comp = Vec::with_capacity(rule.components.len());
            for comp in &rule.components {
                let handle = registry.register(&comp.pattern);
                let (class, perm) = registry.class_and_perm(handle);
                let rep_pin = match &perm {
                    Some(p) => VarId(p[comp.local_pivot.index()]),
                    None => comp.local_pivot,
                };
                if !classes.contains(&class) {
                    classes.push(class);
                }
                per_comp.push(MqiEntry {
                    handle,
                    class,
                    rep_pin,
                    perm,
                });
            }
            entries.push(per_comp);
        }
        MultiQueryIndex {
            entries,
            classes: classes.len(),
        }
    }

    /// Number of isomorphism classes among this Σ's components
    /// (≤ total components).
    pub fn class_count(&self) -> usize {
        self.classes
    }
}

/// Enumerates the matches of one component pinned at `pivot` inside
/// `block`, via the shared registry when an index is supplied. The
/// returned view shares the cached table (column-permuted for
/// non-representative members) — no rows are copied on either hits or
/// misses, and the registry's refcount-aware eviction keeps the view
/// valid for as long as it is held.
#[allow(clippy::too_many_arguments)]
fn component_matches(
    g: &Graph,
    plans: &[PivotedRule],
    rule: usize,
    comp: usize,
    pivot: NodeId,
    block: &Arc<gfd_graph::NodeSet>,
    mqi: Option<&MultiQueryIndex>,
    registry: &ClassRegistry,
    stats: &mut CacheStats,
) -> TableView {
    let plan = &plans[rule].components[comp];
    if let Some(mqi) = mqi {
        let entry = &mqi.entries[rule][comp];
        return registry.pinned_table(entry.handle, g, plan.local_pivot, pivot, block, stats);
    }
    let mut table = MatchTable::new(plan.pattern.node_count());
    ComponentSearch::new(&plan.pattern, g)
        .pin(plan.local_pivot, pivot)
        .restrict(block)
        .collect_into(&mut table);
    TableView::identity(Arc::new(table))
}

/// Probe-only dead-pivot screen: a *resident* factorization whose
/// pivot marginal is zero proves the component has no match pinned
/// there anywhere in the graph — the represented set is a superset of
/// the match set, and the unit's block restriction only shrinks it
/// further — so the orientation can be dropped before any table work.
/// Overflowed counts prove nothing and are ignored. Never builds:
/// warm [`execute_unit`] stays allocation-free.
fn pivot_provably_dead(
    registry: &ClassRegistry,
    entry: &MqiEntry,
    pivot_var: VarId,
    pivot: NodeId,
) -> bool {
    registry
        .cached_factorization(entry.handle)
        .is_some_and(|f| !f.overflowed() && f.marginal(pivot_var, pivot) == Some(0))
}

/// Per-worker reusable execution state: the per-component table views
/// of the unit in flight, the join's backtracking scratch, and the
/// orientation buffer. One instance per worker makes warm
/// [`execute_unit`] calls allocation-free.
#[derive(Default)]
pub struct UnitScratch {
    views: Vec<TableView>,
    join: JoinScratch,
    orient_buf: Vec<usize>,
}

impl UnitScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The join's zero-allocation adapter: component `i` contributes its
/// original variables and the (possibly permuted) view of its cached
/// table.
struct UnitJoin<'a> {
    comps: &'a [ComponentPlan],
    views: &'a [TableView],
}

impl JoinInputs for UnitJoin<'_> {
    fn count(&self) -> usize {
        self.views.len()
    }
    fn vars(&self, i: usize) -> &[VarId] {
        &self.comps[i].orig_vars
    }
    fn table(&self, i: usize) -> &MatchTable {
        self.views[i].table()
    }
    fn perm(&self, i: usize) -> Option<&[u32]> {
        self.views[i].perm()
    }
}

/// Executes one work unit (whose slots live in `slots` — the owning
/// workload's arena), appending violations to `out`. Table probes go
/// through the shared `registry`; `stats` receives this caller's share
/// of the hit/miss counters.
#[allow(clippy::too_many_arguments)]
pub fn execute_unit(
    g: &Graph,
    sigma: &GfdSet,
    plans: &[PivotedRule],
    slots: &[UnitSlot],
    unit: &WorkUnit,
    mqi: Option<&MultiQueryIndex>,
    registry: &ClassRegistry,
    stats: &mut CacheStats,
    scratch: &mut UnitScratch,
    out: &mut Vec<Violation>,
) {
    let rule = &plans[unit.rule()];
    let gfd = sigma.get(unit.rule());
    let k = rule.components.len();
    debug_assert_eq!(k, unit.k(), "one slot per component");
    let unit_slots = unit.slots(slots);
    let nvars = gfd.pattern.node_count();
    let UnitScratch {
        views,
        join,
        orient_buf,
    } = scratch;

    let emit = |views: &[TableView], join: &mut JoinScratch, out: &mut Vec<Violation>| {
        let inputs = UnitJoin {
            comps: &rule.components,
            views,
        };
        join_tables(&inputs, nvars, join, &mut |assignment| {
            if !match_satisfies(&gfd.dep, g, assignment) {
                out.push(Violation {
                    rule: unit.rule(),
                    mapping: Match(assignment.to_vec()),
                });
            }
            Flow::Continue
        });
    };

    // Symmetric-pair fast path: both components are in one isomorphism
    // class with one rep pin, so orientation 2's cached tables are
    // exactly orientation 1's *swapped* — swap the shared tables and
    // re-wrap them in each component's own column permutation instead
    // of paying two more cache probes and view builds.
    if unit.check_both_orientations && k == 2 {
        if let Some(mqi) = mqi {
            let e0 = &mqi.entries[unit.rule()][0];
            let e1 = &mqi.entries[unit.rule()][1];
            if e0.class == e1.class && e0.rep_pin == e1.rep_pin {
                let (s0, s1) = (&unit_slots[0], &unit_slots[1]);
                // Both orientations pin both pivots, so either pivot
                // being provably dead kills the whole unit.
                if pivot_provably_dead(registry, e0, rule.components[0].local_pivot, s0.pivot)
                    || pivot_provably_dead(registry, e1, rule.components[1].local_pivot, s1.pivot)
                {
                    return;
                }
                let v0 = component_matches(
                    g,
                    plans,
                    unit.rule(),
                    0,
                    s0.pivot,
                    &s0.block,
                    Some(mqi),
                    registry,
                    stats,
                );
                let v1 = component_matches(
                    g,
                    plans,
                    unit.rule(),
                    1,
                    s1.pivot,
                    &s1.block,
                    Some(mqi),
                    registry,
                    stats,
                );
                let rewrap = |t: &Arc<MatchTable>, perm: &Option<Arc<[u32]>>| match perm {
                    Some(p) => TableView::permuted(t.clone(), p.clone()),
                    None => TableView::identity(t.clone()),
                };
                if !v0.is_empty() && !v1.is_empty() {
                    views.clear();
                    views.push(v0.clone());
                    views.push(v1.clone());
                    emit(views, join, out);
                    // Orientation (1, 0): component 0 reads the table
                    // cached at pivot 1 and vice versa.
                    views.clear();
                    views.push(rewrap(v1.table(), &e0.perm));
                    views.push(rewrap(v0.table(), &e1.perm));
                    emit(views, join, out);
                }
                views.clear();
                return;
            }
        }
    }

    // Pivot orientations to check within this unit.
    const BOTH: [&[usize]; 2] = [&[0, 1], &[1, 0]];
    orient_buf.clear();
    orient_buf.extend(0..k);
    let identity = [orient_buf.as_slice()];
    let orientations: &[&[usize]] = if unit.check_both_orientations && k == 2 {
        &BOTH
    } else {
        &identity
    };

    for &orient in orientations {
        // Component i is pinned at pivot orient[i] and searched in that
        // pivot's block.
        views.clear();
        let mut dead = false;
        for (i, &slot) in orient.iter().enumerate() {
            let s = &unit_slots[slot];
            if let Some(mqi) = mqi {
                let entry = &mqi.entries[unit.rule()][i];
                if pivot_provably_dead(registry, entry, rule.components[i].local_pivot, s.pivot) {
                    dead = true;
                    break;
                }
            }
            let view = component_matches(
                g,
                plans,
                unit.rule(),
                i,
                s.pivot,
                &s.block,
                mqi,
                registry,
                stats,
            );
            if view.is_empty() {
                dead = true;
                break;
            }
            views.push(view);
        }
        if dead {
            continue;
        }
        emit(views, join, out);
    }
    views.clear();
}

/// Canonical ordering for violation sets, so different schedules can
/// be compared for equality. (Unstable sort: the `(rule, nodes)` key
/// is total — equal keys mean equal violations.)
pub fn sort_violations(v: &mut [Violation]) {
    v.sort_unstable_by(|a, b| {
        a.rule
            .cmp(&b.rule)
            .then_with(|| a.mapping.nodes().cmp(b.mapping.nodes()))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{estimate_workload, plan_rules, WorkloadOptions};
    use gfd_core::validate::detect_violations;
    use gfd_core::{Dependency, Gfd, Literal};
    use gfd_graph::{NodeSet, Value, Vocab};
    use gfd_pattern::PatternBuilder;
    use std::sync::Arc;

    /// Flights with duplicate ids but mismatched destinations.
    fn flights(n_dup: usize) -> Graph {
        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        for i in 0..6 {
            let f = b.add_node_labeled("flight");
            let id = b.add_node_labeled("id");
            let to = b.add_node_labeled("city");
            b.add_edge_labeled(f, id, "number");
            b.add_edge_labeled(f, to, "to");
            let idv = if i < n_dup {
                "DUP".to_string()
            } else {
                format!("FL{i}")
            };
            b.set_attr_named(id, "val", Value::str(&idv));
            b.set_attr_named(to, "val", Value::str(&format!("City{i}")));
        }
        b.freeze()
    }

    fn phi_same_id_same_dest(vocab: Arc<Vocab>) -> Gfd {
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "flight");
        let x1 = b.node("x1", "id");
        let x2 = b.node("x2", "city");
        b.edge(x, x1, "number");
        b.edge(x, x2, "to");
        let y = b.node("y", "flight");
        let y1 = b.node("y1", "id");
        let y2 = b.node("y2", "city");
        b.edge(y, y1, "number");
        b.edge(y, y2, "to");
        let q = b.build();
        let val = vocab.intern("val");
        Gfd::new(
            "same-id-same-dest",
            q,
            Dependency::new(
                vec![Literal::var_eq(x1, val, y1, val)],
                vec![Literal::var_eq(x2, val, y2, val)],
            ),
        )
    }

    fn run_all_units_in(
        g: &Graph,
        sigma: &GfdSet,
        mq: bool,
        registry: &ClassRegistry,
    ) -> (Vec<Violation>, CacheStats) {
        let plans = plan_rules(sigma);
        let wl = estimate_workload(sigma, g, &WorkloadOptions::default());
        let mqi = mq.then(|| MultiQueryIndex::build(&plans, registry));
        let mut scratch = UnitScratch::new();
        let mut stats = CacheStats::default();
        let mut out = Vec::new();
        for u in &wl.units {
            execute_unit(
                g,
                sigma,
                &plans,
                &wl.slots,
                u,
                mqi.as_ref(),
                registry,
                &mut stats,
                &mut scratch,
                &mut out,
            );
        }
        (out, stats)
    }

    fn run_all_units(g: &Graph, sigma: &GfdSet, mq: bool) -> (Vec<Violation>, CacheStats) {
        run_all_units_in(g, sigma, mq, &ClassRegistry::new())
    }

    #[test]
    fn unit_execution_equals_detvio() {
        let g = flights(3);
        let sigma = GfdSet::new(vec![phi_same_id_same_dest(g.vocab().clone())]);
        let mut expected = detect_violations(&sigma, &g);
        let (mut got, _) = run_all_units(&g, &sigma, false);
        sort_violations(&mut expected);
        sort_violations(&mut got);
        assert_eq!(expected.len(), 6, "3 duplicate flights, ordered pairs");
        assert_eq!(got, expected);
    }

    #[test]
    fn multi_query_cache_gives_same_answers_and_hits() {
        let g = flights(3);
        let sigma = GfdSet::new(vec![phi_same_id_same_dest(g.vocab().clone())]);
        let (mut plain, _) = run_all_units(&g, &sigma, false);
        let (mut cached, stats) = run_all_units(&g, &sigma, true);
        sort_violations(&mut plain);
        sort_violations(&mut cached);
        assert_eq!(plain, cached);
        assert!(
            stats.hits > 0,
            "isomorphic components must share enumerations"
        );
    }

    #[test]
    fn multi_query_index_collapses_shared_components() {
        let g = flights(0);
        let vocab = g.vocab().clone();
        // Two distinct rules over the same star component.
        let sigma = GfdSet::new(vec![
            phi_same_id_same_dest(vocab.clone()),
            phi_same_id_same_dest(vocab),
        ]);
        let plans = plan_rules(&sigma);
        let mqi = MultiQueryIndex::build(&plans, &ClassRegistry::new());
        // 4 components total, all isomorphic → 1 class.
        assert_eq!(mqi.class_count(), 1);
    }

    /// `class_count` counts *this Σ's* classes even when the shared
    /// registry already holds classes from other tenants.
    #[test]
    fn class_count_ignores_foreign_tenants() {
        let g = flights(0);
        let registry = ClassRegistry::new();
        // A foreign tenant registers an unrelated pattern first.
        let mut b = PatternBuilder::new(g.vocab().clone());
        b.node("solo", "city");
        registry.register(&b.build());
        let sigma = GfdSet::new(vec![phi_same_id_same_dest(g.vocab().clone())]);
        let plans = plan_rules(&sigma);
        let mqi = MultiQueryIndex::build(&plans, &registry);
        assert_eq!(mqi.class_count(), 1);
        assert_eq!(registry.class_count(), 2);
    }

    #[test]
    fn no_false_positives_on_clean_graph() {
        let g = flights(0);
        let sigma = GfdSet::new(vec![phi_same_id_same_dest(g.vocab().clone())]);
        let (got, _) = run_all_units(&g, &sigma, true);
        assert!(got.is_empty());
    }

    /// A byte-capped registry keeps answers identical and records
    /// evictions; an uncapped run of the same workload evicts nothing.
    #[test]
    fn capped_registry_evicts_but_stays_correct() {
        let g = flights(3);
        let sigma = GfdSet::new(vec![phi_same_id_same_dest(g.vocab().clone())]);
        let big_reg = ClassRegistry::new();
        let (mut plain, big) = run_all_units_in(&g, &sigma, true, &big_reg);
        assert_eq!(
            big_reg.stats().evicted_cold,
            0,
            "default budget must hold this workload"
        );
        // Budget below a single table's bytes: every insert evicts.
        let tiny_reg = ClassRegistry::with_budget_bytes(16);
        let (mut tiny_out, tiny) = run_all_units_in(&g, &sigma, true, &tiny_reg);
        sort_violations(&mut plain);
        sort_violations(&mut tiny_out);
        assert_eq!(plain, tiny_out);
        assert!(tiny_reg.stats().evicted_cold > 0, "tiny budget must evict");
        // At most the budget plus the always-kept newest table.
        assert!(tiny_reg.bytes() <= 16 + 12);
        assert!(
            tiny.misses > big.misses,
            "evicted entries must be re-enumerated"
        );
    }

    /// The satellite regression for refcount-aware eviction: a view
    /// held across an eviction storm must keep reading correct rows —
    /// the registry defers the pinned table instead of dropping it —
    /// and the deferral drains once the view goes away.
    #[test]
    fn view_held_across_eviction_storm_reads_correct_rows() {
        let g = flights(0);
        let sigma = GfdSet::new(vec![phi_same_id_same_dest(g.vocab().clone())]);
        let plans = plan_rules(&sigma);
        // Every star table is 1 row × 3 cols × 4 bytes = 12 bytes; a
        // 12-byte budget forces an eviction on every further pivot.
        let registry = ClassRegistry::with_budget_bytes(12);
        let mqi = MultiQueryIndex::build(&plans, &registry);
        let block = Arc::new(NodeSet::from_vec(g.nodes().collect()));
        let mut stats = CacheStats::default();
        // Flights are nodes 0, 3, 6, …: each adds (flight, id, city).
        let held = component_matches(
            &g,
            &plans,
            0,
            0,
            NodeId(0),
            &block,
            Some(&mqi),
            &registry,
            &mut stats,
        );
        for f in [1u32, 2, 3, 4, 5] {
            component_matches(
                &g,
                &plans,
                0,
                0,
                NodeId(3 * f),
                &block,
                Some(&mqi),
                &registry,
                &mut stats,
            );
        }
        assert!(registry.stats().evicted_cold > 0, "the storm did evict");
        assert!(registry.deferred_pending() > 0, "the held view defers");
        assert_eq!(held.len(), 1);
        assert_eq!(held.get(0, 0), NodeId(0), "x = flight 0");
        assert_eq!(held.get(0, 1), NodeId(1), "x1 = its id node");
        assert_eq!(held.get(0, 2), NodeId(2), "x2 = its city node");
        drop(held);
        registry.sweep();
        assert_eq!(registry.deferred_pending(), 0, "pin dropped ⇒ drained");
        assert!(registry.bytes() <= 12);
    }

    /// The dead-pivot screen: with a resident factorization, units
    /// whose pivot carries zero marginal mass skip table work
    /// entirely. The 4-cycle survives dual simulation — its checks are
    /// degree-local, blind to cycle length — so the workload still
    /// schedules its pivots; the probe-only screen is what kills them.
    #[test]
    fn resident_factorization_screens_dead_pivots() {
        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        let tri: Vec<_> = (0..3).map(|_| b.add_node_labeled("person")).collect();
        for k in 0..3 {
            b.add_edge_labeled(tri[k], tri[(k + 1) % 3], "knows");
        }
        let cyc: Vec<_> = (0..4).map(|_| b.add_node_labeled("person")).collect();
        for k in 0..4 {
            b.add_edge_labeled(cyc[k], cyc[(k + 1) % 4], "knows");
        }
        let g = b.freeze();
        let mut pb = PatternBuilder::new(g.vocab().clone());
        let x = pb.node("x", "person");
        let y = pb.node("y", "person");
        let z = pb.node("z", "person");
        pb.edge(x, y, "knows");
        pb.edge(y, z, "knows");
        pb.edge(z, x, "knows");
        let val = g.vocab().intern("val");
        let gfd = Gfd::new(
            "tri",
            pb.build(),
            Dependency::always(vec![Literal::const_eq(x, val, "__never")]),
        );
        let sigma = GfdSet::new(vec![gfd]);
        let plans = plan_rules(&sigma);
        let wl = estimate_workload(&sigma, &g, &WorkloadOptions::default());
        assert_eq!(wl.units.len(), 7, "dual simulation admits the 4-cycle");

        let registry = ClassRegistry::new();
        let mqi = MultiQueryIndex::build(&plans, &registry);
        // Warm the class factorization, as a planner or validator
        // sharing the registry would have.
        let h = registry.register(&plans[0].components[0].pattern);
        assert!(registry.factorization(h, &g).is_some());

        let mut scratch = UnitScratch::new();
        let mut stats = CacheStats::default();
        let mut out = Vec::new();
        for u in &wl.units {
            execute_unit(
                &g,
                &sigma,
                &plans,
                &wl.slots,
                u,
                Some(&mqi),
                &registry,
                &mut stats,
                &mut scratch,
                &mut out,
            );
        }
        let mut expected = detect_violations(&sigma, &g);
        sort_violations(&mut expected);
        sort_violations(&mut out);
        assert_eq!(out, expected);
        assert_eq!(expected.len(), 3, "one rotation per triangle pivot");
        assert_eq!(
            stats.hits + stats.misses,
            3,
            "dead 4-cycle pivots must never touch the table cache"
        );
    }

    /// The multi-query regression the flat tables exist for: a cache
    /// hit whose member has a **non-identity** witness must reuse the
    /// cached table by pointer (a permuted view), not re-materialize
    /// the rows.
    #[test]
    fn non_identity_witness_hit_copies_no_table() {
        // A path graph s → m → t: the path pattern's pivot is forced to
        // the middle variable (radius 1 vs 2), so twin rules share the
        // cache key whatever their declaration order.
        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        let s = b.add_node_labeled("src");
        let m = b.add_node_labeled("mid");
        let t = b.add_node_labeled("dst");
        b.add_edge_labeled(s, m, "e1");
        b.add_edge_labeled(m, t, "e2");
        let g = b.freeze();
        let vocab = g.vocab().clone();
        // Twin single-component rules whose variables are declared in
        // opposite orders, so the canonical witness between them is a
        // non-identity permutation.
        let path_fwd = {
            let mut pb = PatternBuilder::new(vocab.clone());
            let a = pb.node("a", "src");
            let bb = pb.node("b", "mid");
            let c = pb.node("c", "dst");
            pb.edge(a, bb, "e1");
            pb.edge(bb, c, "e2");
            pb.build()
        };
        let path_rev = {
            let mut pb = PatternBuilder::new(vocab.clone());
            let c = pb.node("c", "dst");
            let bb = pb.node("b", "mid");
            let a = pb.node("a", "src");
            pb.edge(a, bb, "e1");
            pb.edge(bb, c, "e2");
            pb.build()
        };
        let val = vocab.intern("val");
        let mk = |name: &str, q: gfd_pattern::Pattern| {
            let v = q.var_by_name("a").unwrap();
            Gfd::new(
                name,
                q,
                Dependency::always(vec![Literal::var_eq(v, val, v, val)]),
            )
        };
        let sigma = GfdSet::new(vec![mk("fwd", path_fwd), mk("rev", path_rev)]);
        let plans = plan_rules(&sigma);
        let registry = ClassRegistry::new();
        let mqi = MultiQueryIndex::build(&plans, &registry);
        assert_eq!(mqi.class_count(), 1, "twins must share a class");
        assert!(
            mqi.entries[1][0].perm.is_some(),
            "reversed declaration ⇒ non-identity witness"
        );

        let mut stats = CacheStats::default();
        let block = Arc::new(NodeSet::from_vec(g.nodes().collect()));
        let v1 = component_matches(
            &g,
            &plans,
            0,
            0,
            m,
            &block,
            Some(&mqi),
            &registry,
            &mut stats,
        );
        let v2 = component_matches(
            &g,
            &plans,
            1,
            0,
            m,
            &block,
            Some(&mqi),
            &registry,
            &mut stats,
        );
        assert_eq!(stats.hits, 1, "second call must hit");
        assert!(
            Arc::ptr_eq(v1.table(), v2.table()),
            "hit must share the cached table, not copy it"
        );
        assert!(v2.perm().is_some(), "twin reads through a permuted view");
        assert_eq!(v1.len(), 1, "premise: the path matches once");
        // And the permuted view really is the remapped enumeration:
        // rule 0 reads (a=s, b=m, c=t); rule 1 declared (c, b, a), so
        // its logical columns are (c=t, b=m, a=s).
        let q0 = &plans[0].components[0].pattern;
        let q1 = &plans[1].components[0].pattern;
        assert_eq!(v1.get(0, q0.var_by_name("a").unwrap().index()), s);
        assert_eq!(v1.get(0, q0.var_by_name("b").unwrap().index()), m);
        assert_eq!(v1.get(0, q0.var_by_name("c").unwrap().index()), t);
        assert_eq!(v2.get(0, q1.var_by_name("a").unwrap().index()), s);
        assert_eq!(v2.get(0, q1.var_by_name("b").unwrap().index()), m);
        assert_eq!(v2.get(0, q1.var_by_name("c").unwrap().index()), t);
    }
}
