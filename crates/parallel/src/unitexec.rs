//! Executing a work unit: local error detection (`localVio`, §6.1).
//!
//! For a unit `⟨v̄_z, G_z̄⟩` of rule `ϕ`, enumerate matches `h(x̄)` of
//! `ϕ`'s pattern that include `v̄_z` — pinned per component at the
//! pivot candidate and restricted to the candidate's data block — and
//! record every match with `h ⊨ X`, `h ⊭ Y`.
//!
//! When a unit stems from the symmetric-pair dedup (Example 10), both
//! pivot orientations are checked here, so the deduplication never
//! loses violations.
//!
//! The *multi-query* optimization (appendix, following [31]) caches
//! per-(component-isomorphism-class, pivot) match lists: rules mined
//! from shared frequent features share components, and the cache lets
//! all of them reuse one enumeration.

use std::collections::HashMap;

use gfd_core::validate::match_satisfies;
use gfd_core::{GfdSet, Violation};
use gfd_graph::{Graph, NodeId, NodeSet};
use gfd_match::component::ComponentSearch;
use gfd_match::join::{join_components, ComponentMatches};
use gfd_match::types::Flow;
use gfd_match::Match;
use gfd_pattern::{canonical_form, VarId};

use crate::workload::{PivotedRule, WorkUnit};

/// Cross-rule index of isomorphic components for the multi-query
/// optimization.
#[derive(Debug)]
pub struct MultiQueryIndex {
    /// `class_and_map[rule][comp] = (class id, comp-var → rep-var map)`.
    class_and_map: Vec<Vec<(usize, Vec<VarId>)>>,
    /// Representative `(rule, comp)` per class id.
    reps: Vec<(usize, usize)>,
}

impl MultiQueryIndex {
    /// Groups all components of all rules into exact-label isomorphism
    /// classes, keyed by complete canonical codes — no 64-bit
    /// signature-collision exposure, and the canonical orders compose
    /// into the comp-var → rep-var witness the match cache remaps
    /// cached enumerations along. (The earlier embedding-based check
    /// could pair a wildcard variable with a labeled one, whose match
    /// sets differ — exact labels make cache reuse sound by
    /// construction.)
    pub fn build(plans: &[PivotedRule]) -> Self {
        let mut class_and_map: Vec<Vec<(usize, Vec<VarId>)>> = Vec::with_capacity(plans.len());
        let mut reps: Vec<(usize, usize)> = Vec::new();
        let mut by_code: HashMap<Vec<u64>, usize> = HashMap::new();
        let mut rep_forms: Vec<gfd_pattern::CanonicalForm> = Vec::new();
        for (ri, rule) in plans.iter().enumerate() {
            let mut per_comp = Vec::with_capacity(rule.components.len());
            for (ci, comp) in rule.components.iter().enumerate() {
                let form = canonical_form(&comp.pattern);
                let entry = match by_code.get(form.code()) {
                    Some(&class) => (class, form.witness_onto(&rep_forms[class]).into_map()),
                    None => {
                        let class = reps.len();
                        reps.push((ri, ci));
                        by_code.insert(form.code().to_vec(), class);
                        rep_forms.push(form);
                        // Identity mapping for the representative itself.
                        (class, comp.pattern.vars().collect())
                    }
                };
                per_comp.push(entry);
            }
            class_and_map.push(per_comp);
        }
        MultiQueryIndex {
            class_and_map,
            reps,
        }
    }

    /// Number of isomorphism classes (≤ total components).
    pub fn class_count(&self) -> usize {
        self.reps.len()
    }
}

/// A cached enumeration: matches in representative variable order.
type CachedMatches = std::rc::Rc<Vec<Vec<NodeId>>>;

/// Per-worker cache of pinned component enumerations, keyed by
/// `(class, rep pin var, pivot node)`.
#[derive(Default)]
pub struct MatchCache {
    map: HashMap<(usize, VarId, NodeId), CachedMatches>,
    /// Cache hits, for optimization-effect reporting.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
}

impl MatchCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Enumerates the matches of one component pinned at `pivot` inside
/// `block`, via the cache when an index is supplied.
#[allow(clippy::too_many_arguments)]
fn component_matches(
    g: &Graph,
    plans: &[PivotedRule],
    rule: usize,
    comp: usize,
    pivot: NodeId,
    block: &NodeSet,
    mqi: Option<&MultiQueryIndex>,
    cache: &mut MatchCache,
) -> std::rc::Rc<Vec<Vec<NodeId>>> {
    let plan = &plans[rule].components[comp];
    if let Some(mqi) = mqi {
        let (class, map) = &mqi.class_and_map[rule][comp];
        let rep_pin = map[plan.local_pivot.index()];
        let key = (*class, rep_pin, pivot);
        if let Some(hit) = cache.map.get(&key) {
            cache.hits += 1;
            let rep_matches = hit.clone();
            return remap(rep_matches, map, plan.pattern.node_count());
        }
        cache.misses += 1;
        let (rr, rc) = mqi.reps[*class];
        let rep_plan = &plans[rr].components[rc];
        let mut matches = Vec::new();
        ComponentSearch::new(&rep_plan.pattern, g)
            .pin(rep_pin, pivot)
            .restrict(block)
            .for_each(&mut |m| {
                matches.push(m.to_vec());
                Flow::Continue
            });
        let rc_matches = std::rc::Rc::new(matches);
        cache.map.insert(key, rc_matches.clone());
        return remap(rc_matches, map, plan.pattern.node_count());
    }
    let mut matches = Vec::new();
    ComponentSearch::new(&plan.pattern, g)
        .pin(plan.local_pivot, pivot)
        .restrict(block)
        .for_each(&mut |m| {
            matches.push(m.to_vec());
            Flow::Continue
        });
    std::rc::Rc::new(matches)
}

/// Translates representative-indexed matches into component variable
/// order (`comp_match[j] = rep_match[map[j]]`).
fn remap(
    rep_matches: std::rc::Rc<Vec<Vec<NodeId>>>,
    map: &[VarId],
    nvars: usize,
) -> std::rc::Rc<Vec<Vec<NodeId>>> {
    // Identity mapping: reuse the cached allocation as-is.
    if map.iter().enumerate().all(|(i, v)| v.index() == i) {
        return rep_matches;
    }
    std::rc::Rc::new(
        rep_matches
            .iter()
            .map(|rm| (0..nvars).map(|j| rm[map[j].index()]).collect())
            .collect(),
    )
}

/// Executes one work unit, appending violations to `out`.
pub fn execute_unit(
    g: &Graph,
    sigma: &GfdSet,
    plans: &[PivotedRule],
    unit: &WorkUnit,
    mqi: Option<&MultiQueryIndex>,
    cache: &mut MatchCache,
    out: &mut Vec<Violation>,
) {
    let rule = &plans[unit.rule];
    let gfd = sigma.get(unit.rule);
    let k = rule.components.len();
    debug_assert_eq!(k, unit.k(), "one slot per component");
    let nvars = gfd.pattern.node_count();

    // Pivot orientations to check within this unit.
    let orientations: Vec<Vec<usize>> = if unit.check_both_orientations && k == 2 {
        vec![vec![0, 1], vec![1, 0]]
    } else {
        vec![(0..k).collect()]
    };

    for orient in orientations {
        // Component i is pinned at pivot orient[i] and searched in that
        // pivot's block.
        let mut comp_matches = Vec::with_capacity(k);
        let mut dead = false;
        for (i, &slot) in orient.iter().enumerate() {
            let pivot = unit.slots[slot].pivot;
            let block = &unit.slots[slot].block;
            let matches = component_matches(g, plans, unit.rule, i, pivot, block, mqi, cache);
            if matches.is_empty() {
                dead = true;
                break;
            }
            comp_matches.push(ComponentMatches {
                vars: rule.components[i].orig_vars.clone(),
                matches: matches.to_vec(),
            });
        }
        if dead {
            continue;
        }
        join_components(&comp_matches, nvars, &mut |assignment| {
            if !match_satisfies(&gfd.dep, g, assignment) {
                out.push(Violation {
                    rule: unit.rule,
                    mapping: Match(assignment.to_vec()),
                });
            }
            Flow::Continue
        });
    }
}

/// Canonical ordering for violation sets, so different schedules can
/// be compared for equality.
pub fn sort_violations(v: &mut [Violation]) {
    v.sort_by(|a, b| {
        a.rule
            .cmp(&b.rule)
            .then_with(|| a.mapping.nodes().cmp(b.mapping.nodes()))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{estimate_workload, plan_rules, WorkloadOptions};
    use gfd_core::validate::detect_violations;
    use gfd_core::{Dependency, Gfd, Literal};
    use gfd_graph::{Value, Vocab};
    use gfd_pattern::PatternBuilder;
    use std::sync::Arc;

    /// Flights with duplicate ids but mismatched destinations.
    fn flights(n_dup: usize) -> Graph {
        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        for i in 0..6 {
            let f = b.add_node_labeled("flight");
            let id = b.add_node_labeled("id");
            let to = b.add_node_labeled("city");
            b.add_edge_labeled(f, id, "number");
            b.add_edge_labeled(f, to, "to");
            let idv = if i < n_dup {
                "DUP".to_string()
            } else {
                format!("FL{i}")
            };
            b.set_attr_named(id, "val", Value::str(&idv));
            b.set_attr_named(to, "val", Value::str(&format!("City{i}")));
        }
        b.freeze()
    }

    fn phi_same_id_same_dest(vocab: Arc<Vocab>) -> Gfd {
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "flight");
        let x1 = b.node("x1", "id");
        let x2 = b.node("x2", "city");
        b.edge(x, x1, "number");
        b.edge(x, x2, "to");
        let y = b.node("y", "flight");
        let y1 = b.node("y1", "id");
        let y2 = b.node("y2", "city");
        b.edge(y, y1, "number");
        b.edge(y, y2, "to");
        let q = b.build();
        let val = vocab.intern("val");
        Gfd::new(
            "same-id-same-dest",
            q,
            Dependency::new(
                vec![Literal::var_eq(x1, val, y1, val)],
                vec![Literal::var_eq(x2, val, y2, val)],
            ),
        )
    }

    fn run_all_units(g: &Graph, sigma: &GfdSet, mq: bool) -> (Vec<Violation>, MatchCache) {
        let plans = plan_rules(sigma);
        let wl = estimate_workload(sigma, g, &WorkloadOptions::default());
        let mqi = mq.then(|| MultiQueryIndex::build(&plans));
        let mut cache = MatchCache::new();
        let mut out = Vec::new();
        for u in &wl.units {
            execute_unit(g, sigma, &plans, u, mqi.as_ref(), &mut cache, &mut out);
        }
        (out, cache)
    }

    #[test]
    fn unit_execution_equals_detvio() {
        let g = flights(3);
        let sigma = GfdSet::new(vec![phi_same_id_same_dest(g.vocab().clone())]);
        let mut expected = detect_violations(&sigma, &g);
        let (mut got, _) = run_all_units(&g, &sigma, false);
        sort_violations(&mut expected);
        sort_violations(&mut got);
        assert_eq!(expected.len(), 6, "3 duplicate flights, ordered pairs");
        assert_eq!(got, expected);
    }

    #[test]
    fn multi_query_cache_gives_same_answers_and_hits() {
        let g = flights(3);
        let sigma = GfdSet::new(vec![phi_same_id_same_dest(g.vocab().clone())]);
        let (mut plain, _) = run_all_units(&g, &sigma, false);
        let (mut cached, cache) = run_all_units(&g, &sigma, true);
        sort_violations(&mut plain);
        sort_violations(&mut cached);
        assert_eq!(plain, cached);
        assert!(
            cache.hits > 0,
            "isomorphic components must share enumerations"
        );
    }

    #[test]
    fn multi_query_index_collapses_shared_components() {
        let g = flights(0);
        let vocab = g.vocab().clone();
        // Two distinct rules over the same star component.
        let sigma = GfdSet::new(vec![
            phi_same_id_same_dest(vocab.clone()),
            phi_same_id_same_dest(vocab),
        ]);
        let plans = plan_rules(&sigma);
        let mqi = MultiQueryIndex::build(&plans);
        // 4 components total, all isomorphic → 1 class.
        assert_eq!(mqi.class_count(), 1);
    }

    #[test]
    fn no_false_positives_on_clean_graph() {
        let g = flights(0);
        let sigma = GfdSet::new(vec![phi_same_id_same_dest(g.vocab().clone())]);
        let (got, _) = run_all_units(&g, &sigma, true);
        assert!(got.is_empty());
    }
}
