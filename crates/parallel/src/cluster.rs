//! The simulated cluster: virtual workers, virtual clocks, and a
//! communication cost model.
//!
//! See the crate docs for why simulation: the paper's notion of
//! parallel scalability is about `T(|Σ|, |G|, n) = c·t/n + …` — a
//! *cost*, which we compute exactly from real measured unit execution
//! times instead of pretending a 1-core container is a 20-machine
//! cluster. Messages are charged `latency + bytes/bandwidth`, the
//! standard α-β model; §6.2's `CC(w) = c_s · |M|` is the β term.

/// Bandwidth/latency model for simulated messages.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Effective bandwidth in bytes per second (default 125 MB/s — a
    /// 1 Gbps link, matching the paper's EC2-era interconnect).
    pub bandwidth: f64,
    /// Per-message latency in seconds (default 50 µs).
    pub latency: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            bandwidth: 125.0e6,
            latency: 50.0e-6,
        }
    }
}

impl CostModel {
    /// Time to ship one message of `bytes` bytes.
    pub fn message_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

/// Per-worker virtual clocks: compute and communication are tracked
/// separately (Fig. 5(j–l) plots communication time alone).
#[derive(Clone, Debug)]
pub struct SimClocks {
    /// Busy seconds per worker (compute).
    pub busy: Vec<f64>,
    /// Communication seconds per worker.
    pub comm: Vec<f64>,
    /// Bytes shipped per worker.
    pub bytes: Vec<u64>,
    /// Messages per worker.
    pub messages: Vec<u64>,
}

impl SimClocks {
    /// Clocks for `n` workers, all at zero.
    pub fn new(n: usize) -> Self {
        SimClocks {
            busy: vec![0.0; n],
            comm: vec![0.0; n],
            bytes: vec![0u64; n],
            messages: vec![0u64; n],
        }
    }

    /// Number of workers.
    pub fn n(&self) -> usize {
        self.busy.len()
    }

    /// Charges `seconds` of compute to `worker`.
    pub fn charge_compute(&mut self, worker: usize, seconds: f64) {
        self.busy[worker] += seconds;
    }

    /// Charges a message of `bytes` to `worker` under `model`.
    pub fn charge_message(&mut self, worker: usize, bytes: u64, model: &CostModel) {
        self.comm[worker] += model.message_time(bytes);
        self.bytes[worker] += bytes;
        self.messages[worker] += 1;
    }

    /// The compute makespan `max_i busy_i`.
    pub fn compute_makespan(&self) -> f64 {
        self.busy.iter().copied().fold(0.0, f64::max)
    }

    /// The communication makespan (shipments proceed in parallel per
    /// worker, matching §7's observation that communication time "is
    /// not very sensitive to n due to parallel shipment").
    pub fn comm_makespan(&self) -> f64 {
        self.comm.iter().copied().fold(0.0, f64::max)
    }

    /// Total bytes over all workers.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total messages over all workers.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_linear_in_bytes() {
        let m = CostModel {
            bandwidth: 1000.0,
            latency: 0.5,
        };
        assert!((m.message_time(0) - 0.5).abs() < 1e-12);
        assert!((m.message_time(2000) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn clocks_track_makespans() {
        let mut c = SimClocks::new(3);
        c.charge_compute(0, 1.0);
        c.charge_compute(1, 2.5);
        c.charge_compute(1, 0.5);
        assert!((c.compute_makespan() - 3.0).abs() < 1e-12);
        let model = CostModel {
            bandwidth: 100.0,
            latency: 0.0,
        };
        c.charge_message(2, 400, &model);
        assert!((c.comm_makespan() - 4.0).abs() < 1e-12);
        assert_eq!(c.total_bytes(), 400);
        assert_eq!(c.total_messages(), 1);
    }

    #[test]
    fn default_model_sane() {
        let m = CostModel::default();
        assert!(m.message_time(1_000_000) < 0.01, "1MB under 10ms at 1Gbps");
        assert!(m.message_time(0) > 0.0, "latency is nonzero");
    }
}
