//! Incremental workload maintenance: keeping `W(Σ, G)` fresh across
//! graph edits instead of re-running [`estimate_workload`] per edit.
//!
//! Workload estimation is dominated by two products of the graph:
//! the per-component *feasible pivot* sets (one dual simulation per
//! component isomorphism class, via the shared [`ClassRegistry`]) and
//! the `c`-hop *data blocks* of the [`BlockCache`]. Both are
//! repairable from a [`GraphDelta`]:
//!
//! * pivot sets are read from one [`ClassRegistry`] — possibly shared
//!   with detectors and executors of other tenants — where
//!   [`ClassRegistry::advance`] repairs **one class representative**
//!   per delta epoch in `O(affected)` and re-transports the members,
//!   so `k` isomorphic components pay one repair together (and an
//!   epoch another tenant already repaired replays recorded flags
//!   instead of repairing twice);
//! * a cached block is stale only when a delta edge has an endpoint
//!   inside it ([`BlockCache::invalidate_touching`]) — all other
//!   blocks survive as shared `Arc`s;
//! * a rule's *units* are re-assembled only when one of its component
//!   classes' candidate sets changed or one of its blocks went stale;
//!   unaffected rules keep their units (and their `Arc` blocks)
//!   verbatim.
//!
//! The maintained unit set equals a from-scratch
//! [`estimate_workload`] on the edited snapshot (oracle-tested below).
//! `max_units` truncation is an estimation-side safety valve and is
//! not maintained incrementally — a maintainer is only worth its state
//! when it tracks the *full* workload.

use std::sync::Arc;

use gfd_core::GfdSet;
use gfd_graph::{Graph, GraphDelta, NodeId, NodeSet};
use gfd_match::{ClassRegistry, SpaceHandle};

use crate::workload::{
    assemble, feasible_pivots, pivots_from_space, plan_rules, BlockCache, PivotedRule, UnitSlot,
    WorkUnit, Workload, WorkloadOptions,
};

/// Maintains the workload `W(Σ, G)` across graph edits; see the
/// module docs.
pub struct IncrementalWorkload {
    plans: Vec<PivotedRule>,
    /// The serving-tier registry shared across all rules of Σ (and any
    /// co-tenant detectors/executors): one simulation (and one
    /// per-edit repair) per component isomorphism class.
    registry: Arc<ClassRegistry>,
    /// The registry repair epoch this workload is synchronized with.
    version: u64,
    /// Per rule, per component: the registry handle of the component's
    /// pattern (empty when pruning is disabled — pivots then come from
    /// label extents).
    handles: Vec<Vec<SpaceHandle>>,
    cache: BlockCache,
    /// Per-rule unit descriptors, with slot offsets into the *rule's
    /// own* arena in `slots_by_rule` — the same flat layout the
    /// one-shot estimator produces, kept per rule so a repair swaps
    /// exactly one rule's `(units, slots)` pair.
    units_by_rule: Vec<Vec<WorkUnit>>,
    slots_by_rule: Vec<Vec<UnitSlot>>,
    /// Pivot candidates pruned per rule (kept per rule so refreshes
    /// can re-total without re-deriving untouched rules).
    pruned_by_rule: Vec<usize>,
    prune: bool,
}

impl IncrementalWorkload {
    /// Estimates the initial workload, retaining every repairable
    /// intermediate (`opts.max_units` is ignored; see module docs).
    pub fn new(sigma: &GfdSet, g: &Graph, opts: &WorkloadOptions) -> Self {
        Self::with_registry(sigma, g, opts, Arc::new(ClassRegistry::new()))
    }

    /// [`new`](IncrementalWorkload::new) over a shared registry, so
    /// the maintainer's simulations and repairs are reused by every
    /// other tenant of the same registry.
    pub fn with_registry(
        sigma: &GfdSet,
        g: &Graph,
        opts: &WorkloadOptions,
        registry: Arc<ClassRegistry>,
    ) -> Self {
        let plans = plan_rules(sigma);
        let prune = opts.prune_empty_pivots;
        let handles: Vec<Vec<SpaceHandle>> = plans
            .iter()
            .map(|rule| {
                if !prune {
                    return Vec::new();
                }
                rule.components
                    .iter()
                    .map(|plan| registry.register(&plan.pattern))
                    .collect()
            })
            .collect();
        let version = registry.version();
        let mut this = IncrementalWorkload {
            units_by_rule: vec![Vec::new(); plans.len()],
            slots_by_rule: vec![Vec::new(); plans.len()],
            pruned_by_rule: vec![0; plans.len()],
            plans,
            registry,
            version,
            handles,
            cache: BlockCache::new(),
            prune,
        };
        for r in 0..this.plans.len() {
            this.rebuild_rule(r, g);
        }
        this
    }

    /// Simulations the registry has run — one per *queried* component
    /// isomorphism class (test probe).
    pub fn simulations(&self) -> usize {
        self.registry.simulations()
    }

    /// The pivot candidate list of one component (ascending), plus how
    /// many raw candidates the filter pruned.
    fn pivots_of(&self, rule: usize, comp: usize, g: &Graph) -> (Vec<NodeId>, usize) {
        let plan = &self.plans[rule].components[comp];
        if !self.prune {
            return feasible_pivots(g, plan, false);
        }
        let cs = self.registry.space(self.handles[rule][comp], g);
        pivots_from_space(g, plan, &cs)
    }

    /// Re-derives one rule's units from its (current) pivot sets and
    /// the block cache.
    fn rebuild_rule(&mut self, r: usize, g: &Graph) {
        let ncomp = self.plans[r].components.len();
        let mut per_component: Vec<Vec<(NodeId, Arc<NodeSet>, u64)>> = Vec::with_capacity(ncomp);
        let mut pruned = 0usize;
        for c in 0..ncomp {
            let (cands, p) = self.pivots_of(r, c, g);
            pruned += p;
            let radius = self.plans[r].components[c].radius;
            let width = self.plans[r].components[c].width.max(1) as u64;
            let mut feasible = Vec::with_capacity(cands.len());
            for cand in cands {
                let (block, size) = self.cache.block_and_size(g, cand, radius);
                // `assemble` sums precomputed cost contributions.
                feasible.push((cand, block, size * width));
            }
            per_component.push(feasible);
        }
        self.pruned_by_rule[r] = pruned;
        let mut scratch = Workload::default();
        let mut tuple = Vec::new();
        assemble(
            &self.plans[r],
            &per_component,
            0,
            &mut tuple,
            &mut scratch,
            None,
        );
        self.units_by_rule[r] = scratch.units;
        self.slots_by_rule[r] = scratch.slots;
    }

    /// Repairs the workload against one edit step (`g` is the edited
    /// snapshot, `delta` the recorded difference from the last
    /// synchronized snapshot). Returns the indices of the rules whose
    /// units were re-assembled.
    pub fn apply(&mut self, g: &Graph, delta: &GraphDelta) -> Vec<usize> {
        let d = delta.clone().normalize();
        if d.is_empty() {
            return Vec::new();
        }
        // Blocks are stale exactly when a delta *edge* endpoint sits
        // inside them; relabelings and attributes do not move BFS
        // frontiers.
        let mut edge_touched: Vec<NodeId> = Vec::new();
        for e in d.added_edges.iter().chain(&d.removed_edges) {
            edge_touched.push(e.src);
            edge_touched.push(e.dst);
        }
        edge_touched.sort_unstable();
        edge_touched.dedup();
        self.cache.invalidate_touching(&edge_touched);

        // One repair per component isomorphism class: the registry
        // fixes each class representative and re-transports members
        // lazily; `changed[class]` says whether the class's candidate
        // sets moved.
        self.version += 1;
        let changed = if self.prune {
            self.registry.advance(g, &d, self.version)
        } else {
            // Keep the shared registry in lockstep even when this
            // tenant reads no spaces from it: co-tenants rely on every
            // epoch being applied exactly once.
            self.registry.advance(g, &d, self.version);
            Vec::new()
        };

        let mut rebuilt = Vec::new();
        for r in 0..self.plans.len() {
            let mut stale = false;
            // (a) a pivot set changed — some component's class was
            // flagged by the registry repair.
            if self.prune {
                stale |= self.handles[r]
                    .iter()
                    .any(|&h| changed[self.registry.class_of(h)]);
            } else {
                // Unpruned pivots are label universes: stale when the
                // delta adds nodes or relabels anything (wildcards
                // additionally see every new node).
                stale |= !d.added_nodes.is_empty() || !d.label_changes.is_empty();
            }
            // (b) a block of this rule is stale: some unit's slot
            // contains a delta edge endpoint.
            if !stale && !edge_touched.is_empty() {
                stale = self.slots_by_rule[r]
                    .iter()
                    .any(|s| edge_touched.iter().any(|&t| s.block.contains(t)));
            }
            if stale {
                self.rebuild_rule(r, g);
                rebuilt.push(r);
            } else if self.prune {
                // Units are untouched, but the pruning tally tracks the
                // label *universe*, which can grow without changing any
                // pivot set (e.g. a new, infeasible candidate).
                self.pruned_by_rule[r] = (0..self.plans[r].components.len())
                    .map(|c| self.pivots_of(r, c, g).1)
                    .sum();
            }
        }
        rebuilt
    }

    /// Reassembles the maintained per-rule `(units, slots)` pairs into
    /// one flat [`Workload`]: the per-rule arenas are concatenated and
    /// each unit descriptor is rebased by its rule's arena offset —
    /// slots carry shared `Arc` blocks, so no block is ever deep
    /// copied. The `simulations` field carries the maintainer's
    /// lifetime registry count: one fixpoint per isomorphism class
    /// ever queried, however many edits have been applied since.
    pub fn workload(&self) -> Workload {
        let mut slots = Vec::with_capacity(self.slots_by_rule.iter().map(Vec::len).sum());
        let mut units = Vec::with_capacity(self.units_by_rule.iter().map(Vec::len).sum());
        for (rule_units, rule_slots) in self.units_by_rule.iter().zip(&self.slots_by_rule) {
            let base = slots.len() as u32;
            slots.extend_from_slice(rule_slots);
            units.extend(rule_units.iter().map(|u| WorkUnit {
                slot_offset: u.slot_offset + base,
                ..*u
            }));
        }
        Workload {
            units,
            slots,
            estimation_seconds: 0.0,
            pruned: self.pruned_by_rule.iter().sum(),
            truncated: false,
            simulations: self.registry.simulations(),
        }
    }

    /// Iterates the maintained units in rule order (slot offsets are
    /// relative to [`IncrementalWorkload::rule_slots`] of the unit's
    /// rule).
    pub fn units(&self) -> impl Iterator<Item = &WorkUnit> + '_ {
        self.units_by_rule.iter().flatten()
    }

    /// One rule's slot arena (what its units' offsets index).
    pub fn rule_slots(&self, rule: usize) -> &[UnitSlot] {
        &self.slots_by_rule[rule]
    }

    /// Total maintained load `t(|Σ|, W)`.
    pub fn total_cost(&self) -> u64 {
        self.units().map(|u| u.cost).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::estimate_workload;
    use gfd_core::{Dependency, Gfd, Literal};
    use gfd_graph::{GraphBuilder, Value};
    use gfd_pattern::{PatternBuilder, VarId};
    use gfd_util::{prop::check, Rng};

    /// A comparable form of a workload: sorted (rule, pivot vector,
    /// cost, orientation) tuples.
    fn canon(wl: &Workload) -> Vec<(usize, Vec<NodeId>, u64, bool)> {
        let mut v: Vec<_> = wl
            .units
            .iter()
            .map(|u| {
                (
                    u.rule(),
                    u.pivots(&wl.slots).collect::<Vec<_>>(),
                    u.cost,
                    u.check_both_orientations,
                )
            })
            .collect();
        v.sort();
        v
    }

    fn random_flights(rng: &mut Rng) -> gfd_graph::Graph {
        let mut b = GraphBuilder::with_fresh_vocab();
        let n = rng.gen_range(3..8);
        for i in 0..n {
            let f = b.add_node_labeled("flight");
            let id = b.add_node_labeled("id");
            b.add_edge_labeled(f, id, "number");
            b.set_attr_named(id, "val", Value::str(&format!("FL{i}")));
        }
        b.freeze()
    }

    fn rules(vocab: std::sync::Arc<gfd_graph::Vocab>) -> GfdSet {
        let val = vocab.intern("val");
        // Symmetric two-component rule (Example 10 dedup applies).
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "flight");
        let x1 = b.node("x1", "id");
        b.edge(x, x1, "number");
        let y = b.node("y", "flight");
        let y1 = b.node("y1", "id");
        b.edge(y, y1, "number");
        let pair = Gfd::new(
            "pair",
            b.build(),
            Dependency::new(vec![Literal::var_eq(VarId(1), val, VarId(3), val)], vec![]),
        );
        // Single-component rule.
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "flight");
        let x1 = b.node("x1", "id");
        b.edge(x, x1, "number");
        let single = Gfd::new(
            "single",
            b.build(),
            Dependency::always(vec![Literal::var_eq(VarId(1), val, VarId(1), val)]),
        );
        GfdSet::new(vec![pair, single])
    }

    #[test]
    fn maintained_workload_equals_scratch_over_edit_scripts() {
        check("IncrementalWorkload ≡ estimate_workload", 20, |rng| {
            let mut g = random_flights(rng);
            let sigma = rules(g.vocab().clone());
            let opts = WorkloadOptions::default();
            let mut inc = IncrementalWorkload::new(&sigma, &g, &opts);
            for step in 0..8 {
                let kind = rng.gen_range(0..4);
                let r1 = rng.gen_range(0..g.node_count());
                let r2 = rng.gen_range(0..g.node_count());
                let (g2, delta) = g.edit_with_delta(|b| match kind {
                    0 => {
                        // Cross-wire a flight to another id.
                        b.add_edge_labeled(NodeId(r1 as u32), NodeId(r2 as u32), "number");
                    }
                    1 => {
                        b.remove_edge_labeled(NodeId(r1 as u32), NodeId(r2 as u32), "number");
                    }
                    2 => {
                        // A new id-less flight (prunable pivot).
                        b.add_node_labeled("flight");
                    }
                    _ => {
                        let f = b.add_node_labeled("flight");
                        let id = b.add_node_labeled("id");
                        b.add_edge_labeled(f, id, "number");
                    }
                });
                inc.apply(&g2, &delta);
                let scratch = estimate_workload(&sigma, &g2, &opts);
                let (got, want) = (canon(&inc.workload()), canon(&scratch));
                if got != want {
                    return Err(format!(
                        "step {step} (kind {kind}): {} maintained vs {} scratch units",
                        got.len(),
                        want.len()
                    ));
                }
                if inc.workload().pruned != scratch.pruned {
                    return Err(format!(
                        "step {step}: pruned {} vs {}",
                        inc.workload().pruned,
                        scratch.pruned
                    ));
                }
                g = g2;
            }
            Ok(())
        });
    }

    #[test]
    fn untouched_rules_keep_their_units() {
        let mut b = GraphBuilder::with_fresh_vocab();
        let f1 = b.add_node_labeled("flight");
        let id1 = b.add_node_labeled("id");
        b.add_edge_labeled(f1, id1, "number");
        let f2 = b.add_node_labeled("flight");
        let id2 = b.add_node_labeled("id");
        b.add_edge_labeled(f2, id2, "number");
        // A far-away island the rules never touch.
        let far1 = b.add_node_labeled("island");
        let far2 = b.add_node_labeled("island");
        b.add_edge_labeled(far1, far2, "bridge");
        let g = b.freeze();
        let sigma = rules(g.vocab().clone());
        let mut inc = IncrementalWorkload::new(&sigma, &g, &WorkloadOptions::default());
        let before = canon(&inc.workload());
        // Editing only the island leaves every rule's units untouched.
        let (g2, delta) = g.edit_with_delta(|b| {
            b.remove_edge_labeled(far1, far2, "bridge");
            b.add_edge_labeled(far2, far1, "bridge");
        });
        let rebuilt = inc.apply(&g2, &delta);
        assert!(rebuilt.is_empty(), "island edit rebuilt rules {rebuilt:?}");
        assert_eq!(canon(&inc.workload()), before);
        // And the maintained state still matches scratch.
        let scratch = estimate_workload(&sigma, &g2, &WorkloadOptions::default());
        assert_eq!(canon(&inc.workload()), canon(&scratch));
    }

    #[test]
    fn unpruned_mode_tracks_universe_changes() {
        let mut g = {
            let mut b = GraphBuilder::with_fresh_vocab();
            let f = b.add_node_labeled("flight");
            let id = b.add_node_labeled("id");
            b.add_edge_labeled(f, id, "number");
            b.freeze()
        };
        let sigma = rules(g.vocab().clone());
        let opts = WorkloadOptions {
            prune_empty_pivots: false,
            ..Default::default()
        };
        let mut inc = IncrementalWorkload::new(&sigma, &g, &opts);
        for _ in 0..3 {
            let (g2, delta) = g.edit_with_delta(|b| {
                let f = b.add_node_labeled("flight");
                let id = b.add_node_labeled("id");
                b.add_edge_labeled(f, id, "number");
            });
            inc.apply(&g2, &delta);
            let scratch = estimate_workload(&sigma, &g2, &opts);
            assert_eq!(canon(&inc.workload()), canon(&scratch));
            g = g2;
        }
    }
}
