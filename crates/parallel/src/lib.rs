//! # gfd-parallel — parallel scalable GFD error detection
//!
//! Implements Sections 5.2 and 6 of *Functional Dependencies for
//! Graphs* (Fan, Wu & Xu, SIGMOD 2016): the workload model, the
//! load-balancing and bi-criteria assignment strategies, and the two
//! parallel scalable algorithms
//!
//! * [`repval::rep_val`] — graph replicated at every processor
//!   (Fig. 4 / Theorem 10): balance the workload `W(Σ, G)` with a
//!   2-approximate makespan partition, detect locally, union;
//! * [`disval::dis_val`] — graph fragmented across processors
//!   (Theorem 11): estimate partial work units per fragment, assemble
//!   at the coordinator, assign bi-criterially (balance × data
//!   shipment), detect locally with *prefetch* or *partial-match*
//!   evaluation per unit;
//!
//! plus the appendix optimizations: replicate-and-split for skewed
//! data blocks, multi-query processing over common sub-patterns, and
//! workload reduction via implication (module [`opt`]).
//!
//! ## The cluster substitute
//!
//! The paper evaluates on 20 EC2 instances. This reproduction runs on
//! a single machine, so the "cluster" is a **simulator with virtual
//! clocks** (module [`cluster`]): work units execute for real on the
//! host CPU, their measured time is charged to the owning virtual
//! worker, and message traffic is charged to a communication clock
//! under a configurable bandwidth/latency model. Simulated parallel
//! time is `estimation/n + partition + max_i busy_i + comm` — exactly
//! the quantity the paper's parallel-scalability definition measures —
//! so speedup-vs-`n` shapes, balanced-vs-random gaps and
//! repVal-vs-disVal comparisons reproduce faithfully. A real-thread
//! executor (module [`threaded`], std scoped threads over an atomic
//! work queue) exists to verify that the work units compute identical
//! violations when actually run concurrently; all workers share one
//! `Arc<Graph>` CSR snapshot — never per-worker copies — and probe
//! one [`gfd_match::ClassRegistry`] serving tier for candidate
//! spaces, query plans and pinned match tables, so an enumeration
//! paid by any worker (or co-tenant service) is a hit for every
//! other. Workers are
//! **panic-isolated**: a unit that panics is caught, retried on a
//! healthy worker with bounded backoff, and quarantined-and-reported
//! if the fault is sticky — never silently dropped.
//!
//! ## The standing-violation service
//!
//! Module [`service`] lifts the one-shot detectors into a long-lived
//! engine over an **edit stream**: batches of [`gfd_graph::GraphDelta`]s
//! compact (opposing ops cancel), commit as epoch-pinned snapshots
//! readers can hold across later commits, replay from any pinned epoch
//! via the [`service::EditLog`], and push violation *changes* to
//! subscribers. Its robustness story — malformed-batch rejection,
//! `catch_unwind` repair with graceful degradation to a panic-isolated
//! full recompute, and a sampled per-epoch repair-invariant oracle —
//! is exercised by the deterministic fault-injection harness (module
//! [`fault`]) and the 10k-edit soak test.

pub mod balance;
pub mod cluster;
pub mod disval;
pub mod fault;
pub mod incremental;
pub mod metrics;
pub mod opt;
pub mod repval;
pub mod service;
pub mod threaded;
pub mod unitexec;
pub mod wal;
pub mod workload;

pub use cluster::CostModel;
pub use disval::{dis_val, DisValConfig};
pub use fault::{CrashKind, FaultPlan};
pub use gfd_match::ClassRegistry;
pub use incremental::IncrementalWorkload;
pub use metrics::ParallelReport;
pub use repval::{rep_val, RepValConfig};
pub use service::{
    EditLog, IngestError, PinnedEpoch, ServiceConfig, ServiceStats, VioUpdate, ViolationService,
};
pub use threaded::{
    run_units_threaded, run_units_threaded_report, ThreadedReport, MAX_UNIT_ATTEMPTS,
};
pub use unitexec::{CacheStats, MultiQueryIndex, UnitScratch};
pub use wal::{FrameFault, RecoveryReport, SyncPolicy, WalError, WalWriter};
pub use workload::{
    estimate_workload, estimate_workload_in, UnitSlot, WorkUnit, Workload, WorkloadOptions,
};

/// Assignment strategy for distributing work units over processors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Assignment {
    /// Greedy LPT — the 2-approximation of Prop. 12 (and the balance
    /// half of the bi-criteria strategy of Prop. 13).
    Balanced,
    /// Uniform random assignment — the `repran`/`disran` baseline of §7.
    Random {
        /// RNG seed, for reproducibility.
        seed: u64,
    },
}
