//! Scaled stand-ins for the paper's real-life graphs.
//!
//! The real DBpedia (28M nodes / 33.4M edges, 200 node types, 160 edge
//! types), YAGO2 (3.5M / 7.35M, 13 / 36) and Pokec (1.63M / 30.6M, 269
//! / 11) cannot be downloaded in this environment, so we generate
//! graphs that preserve the statistics the GFD algorithms are
//! sensitive to — type-alphabet sizes, node:edge ratios, entity shapes
//! (hub + property leaves, the shape `Q1`-style patterns match), and
//! power-law relation skew — at roughly 0.1% scale. See `DESIGN.md`
//! §3 for the substitution rationale.
//!
//! Entities are hubs typed over a Zipf alphabet; each carries property
//! leaves (typed nodes with a `val` attribute, like `flight → id`)
//! and power-law cross-entity relations. Leaf values are drawn from
//! small per-type domains so equality antecedents actually fire, and
//! a configurable fraction of *twin entities* share their first leaf
//! value while agreeing on the rest — the "same id ⇒ same fields"
//! regularity that FD-style rules rely on.

use gfd_graph::{Graph, GraphBuilder, NodeId, Value};
use gfd_util::Rng;

use crate::synth::ZipfSampler;

/// Which real-life graph to imitate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RealLifeKind {
    /// Knowledge graph, wide type alphabet, sparse (ratio ≈ 1.2).
    DBpedia,
    /// Knowledge base, narrow type alphabet, ratio ≈ 2.1.
    Yago2,
    /// Social network, dense relations (high avg degree).
    Pokec,
}

/// Stand-in generator configuration.
#[derive(Clone, Debug)]
pub struct RealLifeConfig {
    /// Which shape to produce.
    pub kind: RealLifeKind,
    /// Size multiplier (1.0 = the default bench scale).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RealLifeConfig {
    /// Default-scale config.
    pub fn new(kind: RealLifeKind) -> Self {
        RealLifeConfig {
            kind,
            scale: 1.0,
            seed: 0xBEEF,
        }
    }
}

struct Shape {
    entities: usize,
    entity_types: usize,
    leaf_types: usize,
    leaves_per_entity: usize,
    relations_per_entity: f64,
    relation_types: usize,
    skew: f64,
    /// Fraction of entities that have a twin sharing leaf 0's value.
    twin_fraction: f64,
}

fn shape(kind: RealLifeKind) -> Shape {
    match kind {
        RealLifeKind::DBpedia => Shape {
            entities: 10_000,
            entity_types: 60,
            leaf_types: 30,
            leaves_per_entity: 2,
            relations_per_entity: 1.3,
            relation_types: 50,
            skew: 1.5,
            twin_fraction: 0.10,
        },
        RealLifeKind::Yago2 => Shape {
            entities: 8_000,
            entity_types: 13,
            leaf_types: 12,
            leaves_per_entity: 2,
            relations_per_entity: 4.3,
            relation_types: 24,
            skew: 1.6,
            twin_fraction: 0.10,
        },
        RealLifeKind::Pokec => Shape {
            entities: 5_000,
            entity_types: 40,
            leaf_types: 4,
            leaves_per_entity: 1,
            relations_per_entity: 12.0,
            relation_types: 8,
            skew: 1.8,
            twin_fraction: 0.08,
        },
    }
}

/// Generates a real-life-shaped graph.
pub fn reallife_graph(cfg: &RealLifeConfig) -> Graph {
    let s = shape(cfg.kind);
    let entities = ((s.entities as f64 * cfg.scale) as usize).max(16);
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut g = GraphBuilder::with_fresh_vocab();
    let vocab = g.vocab().clone();
    let prefix = match cfg.kind {
        RealLifeKind::DBpedia => "db",
        RealLifeKind::Yago2 => "yg",
        RealLifeKind::Pokec => "pk",
    };

    let etypes: Vec<_> = (0..s.entity_types)
        .map(|i| vocab.intern(&format!("{prefix}_type{i}")))
        .collect();
    let ltypes: Vec<_> = (0..s.leaf_types)
        .map(|i| vocab.intern(&format!("{prefix}_prop{i}")))
        .collect();
    let rtypes: Vec<_> = (0..s.relation_types)
        .map(|i| vocab.intern(&format!("{prefix}_rel{i}")))
        .collect();
    let leaf_edge: Vec<_> = (0..s.leaves_per_entity)
        .map(|i| vocab.intern(&format!("{prefix}_has{i}")))
        .collect();
    let val = vocab.intern("val");
    let name = vocab.intern("name");

    let type_sampler = ZipfSampler::new(s.entity_types, 1.0);
    // Value domains small enough to create equal-value pairs.
    let domain = (entities / 5).max(4);

    let mut hubs: Vec<NodeId> = Vec::with_capacity(entities);
    let mut hub_type: Vec<usize> = Vec::with_capacity(entities);
    for i in 0..entities {
        let t = type_sampler.sample(&mut rng);
        let hub = g.add_node(etypes[t]);
        g.set_attr(hub, name, Value::Str(format!("e{i}").into()));
        hubs.push(hub);
        hub_type.push(t);
    }

    // Twin assignment: entity i in the twin fraction copies the leaf-0
    // value of its partner (the previous same-type entity).
    let mut leaf0_value: Vec<Option<String>> = vec![None; entities];
    let mut last_of_type: Vec<Option<usize>> = vec![None; s.entity_types];
    for i in 0..entities {
        let t = hub_type[i];
        let is_twin = rng.gen_bool(s.twin_fraction);
        let v0 = match (is_twin, last_of_type[t]) {
            (true, Some(j)) => leaf0_value[j].clone().expect("partner has a value"),
            _ => format!("id{}", rng.gen_range(0..domain * 4)),
        };
        leaf0_value[i] = Some(v0);
        last_of_type[t] = Some(i);
    }

    for i in 0..entities {
        let t = hub_type[i];
        for l in 0..s.leaves_per_entity {
            // Leaf type depends on (entity type, slot): entities of a
            // type share their property schema, like flights all
            // having an id leaf.
            let lt = ltypes[(t * 7 + l) % s.leaf_types];
            let leaf = g.add_node(lt);
            let v = if l == 0 {
                leaf0_value[i].clone().expect("assigned above")
            } else {
                // Non-id leaves: twins agree (value derived from leaf 0),
                // others draw from the domain.
                format!(
                    "w{:x}",
                    fxhash(leaf0_value[i].as_deref().unwrap_or(""), l as u64)
                )
            };
            g.set_attr(leaf, val, Value::Str(v.into()));
            g.add_edge(hubs[i], leaf, leaf_edge[l]);
        }
    }

    // Cross-entity relations with power-law targets.
    let target = ZipfSampler::new(entities, s.skew);
    let total_rel = (entities as f64 * s.relations_per_entity) as usize;
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < total_rel && attempts < total_rel * 10 {
        attempts += 1;
        let src = hubs[rng.gen_range(0..entities)];
        let dst = hubs[target.sample(&mut rng)];
        if src == dst {
            continue;
        }
        let r = rtypes[rng.gen_range(0..s.relation_types)];
        if g.add_edge(src, dst, r) {
            added += 1;
        }
    }
    g.freeze()
}

/// Builds the *twin-consistency* rule set for a stand-in graph: for
/// every `(entity type, leaf₀ type, leaf₁ type)` schema combination
/// found in the graph, the GFD "entities agreeing on leaf₀'s value
/// agree on leaf₁'s value" — the `ϕ1` (flight) shape. Clean stand-in
/// graphs satisfy all of these by construction (leaf₁ is a function of
/// leaf₀), so any violation pinpoints injected noise; this is the rule
/// set the Fig. 9 accuracy experiment validates with.
pub fn twin_rules(g: &Graph, kind: RealLifeKind) -> gfd_core::GfdSet {
    use gfd_core::{Dependency, Gfd, Literal};
    use gfd_pattern::PatternBuilder;

    let prefix = match kind {
        RealLifeKind::DBpedia => "db",
        RealLifeKind::Yago2 => "yg",
        RealLifeKind::Pokec => "pk",
    };
    let vocab = g.vocab().clone();
    let Some(has0) = vocab.lookup(&format!("{prefix}_has0")) else {
        return gfd_core::GfdSet::default();
    };
    let has1 = vocab.lookup(&format!("{prefix}_has1"));
    let val = vocab.intern("val");

    // Discover (hub label, leaf0 label, leaf1 label) schema combos.
    let mut combos: Vec<(gfd_graph::Sym, gfd_graph::Sym, Option<gfd_graph::Sym>)> = Vec::new();
    for e in g.edges() {
        if e.label != has0 {
            continue;
        }
        let hub = e.src;
        let l0 = g.label(e.dst);
        let l1 = has1.and_then(|h1| {
            g.neighbors_labeled(hub, h1)
                .first()
                .map(|a| g.label(a.node))
        });
        let combo = (g.label(hub), l0, l1);
        if !combos.contains(&combo) {
            combos.push(combo);
        }
    }
    combos.sort_by_key(|&(a, b, c)| (a, b, c.map(|s| s.0 + 1).unwrap_or(0)));

    let mut rules = Vec::new();
    for (i, (hub_l, l0, l1)) in combos.into_iter().enumerate() {
        let mut b = PatternBuilder::new(vocab.clone());
        let hub_name = vocab.resolve(hub_l);
        let l0_name = vocab.resolve(l0);
        let x = b.node("x", &hub_name);
        let xi = b.node("xi", &l0_name);
        b.edge(x, xi, &format!("{prefix}_has0"));
        let y = b.node("y", &hub_name);
        let yi = b.node("yi", &l0_name);
        b.edge(y, yi, &format!("{prefix}_has0"));
        let dep = match l1 {
            Some(l1) => {
                let l1_name = vocab.resolve(l1);
                let xj = b.node("xj", &l1_name);
                b.edge(x, xj, &format!("{prefix}_has1"));
                let yj = b.node("yj", &l1_name);
                b.edge(y, yj, &format!("{prefix}_has1"));
                Dependency::new(
                    vec![Literal::var_eq(xi, val, yi, val)],
                    vec![Literal::var_eq(xj, val, yj, val)],
                )
            }
            // Single-leaf entities (Pokec): same id ⇒ same name.
            None => {
                let name = vocab.intern("name");
                let _ = name;
                Dependency::new(
                    vec![Literal::var_eq(xi, val, yi, val)],
                    vec![Literal::var_eq(xi, val, xi, val)],
                )
            }
        };
        rules.push(Gfd::new(format!("twin-consistency-{i}"), b.build(), dep));
    }
    gfd_core::GfdSet::new(rules)
}

/// Tiny deterministic string hash (derived leaf values must be a pure
/// function of the id value so twins agree).
fn fxhash(s: &str, salt: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ salt.wrapping_mul(0x100000001b3);
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h & 0xffff
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::GraphStats;

    #[test]
    fn shapes_have_expected_ratios() {
        for (kind, lo, hi) in [
            (RealLifeKind::DBpedia, 0.8, 1.6),
            (RealLifeKind::Yago2, 1.5, 2.6),
            (RealLifeKind::Pokec, 4.0, 14.0),
        ] {
            let g = reallife_graph(&RealLifeConfig {
                scale: 0.2,
                ..RealLifeConfig::new(kind)
            });
            let ratio = g.edge_count() as f64 / g.node_count() as f64;
            assert!(
                ratio > lo && ratio < hi,
                "{kind:?}: edge/node ratio {ratio} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = RealLifeConfig {
            scale: 0.1,
            ..RealLifeConfig::new(RealLifeKind::Yago2)
        };
        let a = reallife_graph(&cfg);
        let b = reallife_graph(&cfg);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn twins_share_leaf0_and_agree_on_derived_leaves() {
        let g = reallife_graph(&RealLifeConfig {
            scale: 0.5,
            ..RealLifeConfig::new(RealLifeKind::Yago2)
        });
        let val = g.vocab().lookup("val").unwrap();
        // Group leaf-0 values; twins exist iff some value repeats.
        let mut counts = std::collections::HashMap::new();
        for n in g.nodes() {
            if let Some(v) = g.attr(n, val) {
                *counts.entry(v.clone()).or_insert(0usize) += 1;
            }
        }
        assert!(
            counts.values().any(|&c| c > 1),
            "twin fraction must produce duplicate leaf values"
        );
    }

    #[test]
    fn pokec_is_densest() {
        let mk = |kind| {
            let g = reallife_graph(&RealLifeConfig {
                scale: 0.2,
                ..RealLifeConfig::new(kind)
            });
            GraphStats::compute(&g).avg_degree()
        };
        let pokec = mk(RealLifeKind::Pokec);
        let dbp = mk(RealLifeKind::DBpedia);
        assert!(pokec > dbp, "pokec {pokec} vs dbpedia {dbp}");
    }
}
