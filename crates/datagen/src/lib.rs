//! # gfd-datagen — graphs, rules and noise for GFD experiments
//!
//! Everything Section 7 of *Functional Dependencies for Graphs* (Fan,
//! Wu & Xu, SIGMOD 2016) needs as experimental inputs:
//!
//! * [`synth`] — the synthetic generator: power-law degree
//!   distribution, configurable `|V|`/`|E|`, a 30-label alphabet, 5
//!   attributes over an active domain of 1000 values, plus a skew knob
//!   for the Fig. 8 experiment;
//! * [`reallife`] — scaled stand-ins for DBpedia, YAGO2 and Pokec that
//!   preserve the statistics GFD validation is sensitive to (type
//!   alphabet sizes, node:edge ratios, entity shapes, degree skew) —
//!   the offline substitution documented in `DESIGN.md`;
//! * [`rules`] — the GFD generator of §7: mine frequent features
//!   (edges and short paths), pick top seeds, assemble patterns of a
//!   target size with 1–2 connected components, then attach attribute
//!   dependencies;
//! * [`noise`] — the appendix's error injection (attribute / type /
//!   representational inconsistencies at a configurable rate, default
//!   2%), recording the ground-truth dirty entities for
//!   precision/recall scoring.

pub mod noise;
pub mod reallife;
pub mod rules;
pub mod synth;

pub use noise::{inject_noise, NoiseConfig, NoiseReport};
pub use reallife::{reallife_graph, twin_rules, RealLifeConfig, RealLifeKind};
pub use rules::{isomorphic_twin, mine_gfds, RuleGenConfig};
pub use synth::{synthetic_graph, SynthConfig};
