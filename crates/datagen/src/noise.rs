//! Error injection (appendix, "Compared with Other Approaches").
//!
//! Following the paper (which follows the DBpedia quality study
//! [50]), noise is injected into sampled entities with a given
//! probability, in three kinds:
//!
//! * **attribute inconsistency** — change the value of some `x.A`;
//! * **type inconsistency** — revise the type (label) of `x`;
//! * **representational inconsistency** — given `x.A = x'.A` with `x`
//!   and `x'` of the same type, revise one of the two values to a
//!   different surface form.
//!
//! The report records the ground-truth dirty node set `Vio`, from
//! which the Fig. 9 harness computes precision and recall.

use gfd_graph::{Graph, GraphBuilder, GraphDelta, NodeId, Value};
use gfd_util::Rng;

/// Noise-injection parameters.
#[derive(Clone, Debug)]
pub struct NoiseConfig {
    /// Per-entity corruption probability (paper: 2%).
    pub rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            rate: 0.02,
            seed: 0xD1127,
        }
    }
}

/// What was corrupted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NoiseKind {
    /// `x.A` value changed.
    Attribute,
    /// Node label changed.
    Type,
    /// Surface form of a shared value changed on one of the sharers.
    Representational,
}

/// Ground truth produced by [`inject_noise`].
#[derive(Debug, Default)]
pub struct NoiseReport {
    /// Corrupted nodes with the kind of corruption.
    pub corrupted: Vec<(NodeId, NoiseKind)>,
}

impl NoiseReport {
    /// The dirty-entity set `Vio` as a sorted node list.
    pub fn dirty_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.corrupted.iter().map(|&(n, _)| n).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Number of injected errors.
    pub fn len(&self) -> usize {
        self.corrupted.len()
    }

    /// True when nothing was corrupted.
    pub fn is_empty(&self) -> bool {
        self.corrupted.is_empty()
    }
}

/// Injects noise into a thawed graph, returning the ground truth.
/// Mutation is a builder-level concern: thaw a frozen snapshot with
/// [`gfd_graph::Graph::thaw`], corrupt it here, then re-freeze.
pub fn inject_noise(g: &mut GraphBuilder, cfg: &NoiseConfig) -> NoiseReport {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut report = NoiseReport::default();
    let nodes: Vec<NodeId> = g.nodes().collect();
    // Collect label alphabet once for type noise.
    let labels: Vec<_> = {
        let mut ls: Vec<_> = nodes.iter().map(|&n| g.label(n)).collect();
        ls.sort_unstable();
        ls.dedup();
        ls
    };
    // Value index for representational noise: (label, attr, value) pairs.
    for &n in &nodes {
        if !rng.gen_bool(cfg.rate) {
            continue;
        }
        let kind = match rng.gen_range(0..3) {
            0 => NoiseKind::Attribute,
            1 => NoiseKind::Type,
            _ => NoiseKind::Representational,
        };
        match kind {
            NoiseKind::Attribute => {
                let attrs: Vec<_> = g.attrs(n).iter().map(|(a, _)| a).collect();
                if let Some(&a) = attrs.first() {
                    let tag = report.corrupted.len();
                    g.set_attr(n, a, Value::Str(format!("__noise_{tag}").into()));
                    report.corrupted.push((n, NoiseKind::Attribute));
                }
            }
            NoiseKind::Type => {
                if labels.len() > 1 {
                    let current = g.label(n);
                    let i = rng.gen_range(0..labels.len());
                    // `labels` is deduplicated, so stepping one slot
                    // past a collision always lands on a different
                    // label.
                    let pick = if labels[i] == current {
                        labels[(i + 1) % labels.len()]
                    } else {
                        labels[i]
                    };
                    g.set_label(n, pick);
                    report.corrupted.push((n, NoiseKind::Type));
                }
            }
            NoiseKind::Representational => {
                // Find a same-label sharer of some attribute value and
                // perturb this node's copy (append a variant marker —
                // same meaning, different surface form).
                let attrs: Vec<_> = g.attrs(n).iter().map(|(a, v)| (a, v.clone())).collect();
                let mut done = false;
                for (a, v) in &attrs {
                    let sharer = g
                        .nodes_with_label(g.label(n))
                        .iter()
                        .any(|&m| m != n && g.attr(m, *a) == Some(v));
                    if sharer {
                        let variant = format!("{v}_repr");
                        g.set_attr(n, *a, Value::Str(variant.into()));
                        report.corrupted.push((n, NoiseKind::Representational));
                        done = true;
                        break;
                    }
                }
                if !done {
                    // No sharer: fall back to attribute noise.
                    if let Some((a, _)) = attrs.first() {
                        let tag = report.corrupted.len();
                        g.set_attr(n, *a, Value::Str(format!("__noise_{tag}").into()));
                        report.corrupted.push((n, NoiseKind::Attribute));
                    }
                }
            }
        }
    }
    report
}

/// Injects noise into a frozen snapshot through a recorded edit
/// session, returning the corrupted snapshot, the ground truth, *and*
/// the [`GraphDelta`] describing exactly what changed — the triple the
/// incremental repair loop (inject → detect → fix) consumes: the
/// delta feeds `IncrementalDetector::apply`/`IncrementalSpace::apply`
/// so detection after each injection touches only the corrupted
/// neighborhood.
pub fn inject_noise_with_delta(g: &Graph, cfg: &NoiseConfig) -> (Graph, NoiseReport, GraphDelta) {
    let mut b = g.thaw();
    let report = inject_noise(&mut b, cfg);
    let delta = b
        .take_delta()
        .expect("thawed builders record deltas")
        .normalize();
    (g.apply_delta(&delta), report, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reallife::{reallife_graph, RealLifeConfig, RealLifeKind};

    fn graph() -> Graph {
        reallife_graph(&RealLifeConfig {
            scale: 0.1,
            ..RealLifeConfig::new(RealLifeKind::Yago2)
        })
    }

    #[test]
    fn rate_controls_volume() {
        let mut b = graph().thaw();
        let n = b.node_count() as f64;
        let report = inject_noise(
            &mut b,
            &NoiseConfig {
                rate: 0.05,
                seed: 1,
            },
        );
        let frac = report.len() as f64 / n;
        assert!(frac > 0.02 && frac < 0.09, "got fraction {frac}");
    }

    #[test]
    fn zero_rate_is_noop() {
        let g = graph();
        let before = gfd_graph::io::to_text(&g);
        let mut b = g.thaw();
        let report = inject_noise(&mut b, &NoiseConfig { rate: 0.0, seed: 1 });
        assert!(report.is_empty());
        assert_eq!(gfd_graph::io::to_text(&b.freeze()), before);
    }

    #[test]
    fn corruption_changes_graph() {
        let g = graph();
        let before = gfd_graph::io::to_text(&g);
        let mut b = g.thaw();
        let report = inject_noise(
            &mut b,
            &NoiseConfig {
                rate: 0.10,
                seed: 2,
            },
        );
        assert!(!report.is_empty());
        assert_ne!(gfd_graph::io::to_text(&b.freeze()), before);
    }

    #[test]
    fn dirty_nodes_deduplicated_and_sorted() {
        let mut b = graph().thaw();
        let report = inject_noise(&mut b, &NoiseConfig { rate: 0.2, seed: 3 });
        let dirty = report.dirty_nodes();
        for w in dirty.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn delta_injection_equals_builder_injection() {
        let g = graph();
        let cfg = NoiseConfig {
            rate: 0.08,
            seed: 11,
        };
        let (noisy, report, delta) = inject_noise_with_delta(&g, &cfg);
        assert!(!report.is_empty());
        assert!(!delta.is_empty());
        // Same seed through the plain builder path must give the same
        // corrupted snapshot.
        let mut b = g.thaw();
        let report2 = inject_noise(&mut b, &cfg);
        assert_eq!(report.corrupted, report2.corrupted);
        assert_eq!(
            gfd_graph::io::to_text(&noisy),
            gfd_graph::io::to_text(&b.freeze())
        );
        // Every corrupted node is visible in the delta's neighborhood.
        let touched = delta.touched_nodes();
        for n in report.dirty_nodes() {
            assert!(touched.binary_search(&n).is_ok(), "{n:?} not in delta");
        }
    }

    /// The end-to-end repair loop the delta subsystem exists for:
    /// inject noise (emitting a delta), detect incrementally, fix the
    /// corrupted nodes (emitting another delta), detect again — at
    /// every step the maintained violation set must equal a
    /// from-scratch `detVio`, and the fix must restore the pre-noise
    /// violation set.
    #[test]
    fn inject_detect_fix_loop_is_incremental() {
        use gfd_core::incremental::{violation_set, IncrementalDetector};

        let g0 = graph();
        let sigma = crate::rules::mine_gfds(
            &g0,
            &crate::rules::RuleGenConfig {
                count: 4,
                pattern_nodes: 3,
                two_component_fraction: 0.25,
                ..Default::default()
            },
        );
        let mut det = IncrementalDetector::new(&sigma, &g0);
        let baseline = violation_set(&sigma, &g0);
        assert_eq!(
            det.violations()
                .into_iter()
                .map(|v| (v.rule, v.mapping))
                .collect::<std::collections::HashSet<_>>(),
            baseline
        );

        // Inject: the detector repairs itself from the noise delta.
        let (noisy, report, delta) = inject_noise_with_delta(
            &g0,
            &NoiseConfig {
                rate: 0.05,
                seed: 23,
            },
        );
        assert!(!report.is_empty(), "need actual corruption to exercise");
        det.apply(&noisy, &delta);
        assert_eq!(
            det.violations()
                .into_iter()
                .map(|v| (v.rule, v.mapping))
                .collect::<std::collections::HashSet<_>>(),
            violation_set(&sigma, &noisy),
            "incremental detection diverged after injection"
        );

        // Fix: restore every corrupted node from the clean snapshot.
        let (fixed, fix_delta) = noisy.edit_with_delta(|b| {
            for n in report.dirty_nodes() {
                b.set_label(n, g0.label(n));
                let dirty_attrs: Vec<_> = b.attrs(n).iter().map(|(a, _)| a).collect();
                for a in dirty_attrs {
                    if g0.attr(n, a).is_none() {
                        b.remove_attr(n, a);
                    }
                }
                for (a, v) in g0.attrs(n).iter() {
                    b.set_attr(n, a, v.clone());
                }
            }
        });
        det.apply(&fixed, &fix_delta);
        let after_fix = det
            .violations()
            .into_iter()
            .map(|v| (v.rule, v.mapping))
            .collect::<std::collections::HashSet<_>>();
        assert_eq!(
            after_fix,
            violation_set(&sigma, &fixed),
            "incremental detection diverged after repair"
        );
        assert_eq!(after_fix, baseline, "repair must restore the baseline");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut b1 = graph().thaw();
        let mut b2 = graph().thaw();
        let cfg = NoiseConfig {
            rate: 0.05,
            seed: 9,
        };
        let r1 = inject_noise(&mut b1, &cfg);
        let r2 = inject_noise(&mut b2, &cfg);
        assert_eq!(r1.corrupted, r2.corrupted);
    }
}
