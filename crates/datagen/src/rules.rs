//! The GFD generator of §7.
//!
//! "We first mined frequent features, including edges and paths of
//! length up to 3. We selected top-5 most frequent features as
//! 'seeds', and combined them to form patterns Q of size |Q| [with 1
//! or 2 connected components]. For each Q, we constructed dependency
//! X → Y with literals composed of the node attributes."
//!
//! Patterns grow greedily from a seed feature by attaching further
//! frequent features at label-compatible nodes until the requested
//! node count is reached. Two-component rules are twin patterns (the
//! `ϕ1`/`Q1` shape) whose hub label is chosen from moderately-sized
//! extents so that the pivot-pair workload stays tractable; their
//! dependencies equate twin attributes (`x₁.val = y₁.val → x₂.val =
//! y₂.val`). Single-component rules get constant or variable literals
//! drawn from values actually present in the graph, so antecedents
//! fire on real data.

use std::collections::HashMap;

use gfd_core::{Dependency, Gfd, GfdSet, Literal};
use gfd_graph::{Graph, NodeId, Sym};
use gfd_pattern::{PatternBuilder, VarId};
use gfd_util::Rng;

/// Rule-generation parameters.
#[derive(Clone, Debug)]
pub struct RuleGenConfig {
    /// Number of rules `‖Σ‖` to produce.
    pub count: usize,
    /// Pattern node count `|Q|` (per component for twin rules).
    pub pattern_nodes: usize,
    /// Fraction of rules with two (twin) components.
    pub two_component_fraction: f64,
    /// Largest admissible pivot extent for two-component rules (bounds
    /// the quadratic pivot-pair workload).
    pub max_pivot_extent: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RuleGenConfig {
    fn default() -> Self {
        RuleGenConfig {
            count: 50,
            pattern_nodes: 3,
            two_component_fraction: 0.3,
            max_pivot_extent: 150,
            seed: 0xACE,
        }
    }
}

/// An edge feature `(src label, edge label, dst label)` with its count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct EdgeFeature {
    src: Sym,
    edge: Sym,
    dst: Sym,
}

/// Mines edge-feature frequencies in one pass.
fn mine_edge_features(g: &Graph) -> Vec<(EdgeFeature, usize)> {
    let mut counts: HashMap<EdgeFeature, usize> = HashMap::new();
    for e in g.edges() {
        let f = EdgeFeature {
            src: g.label(e.src),
            edge: e.label,
            dst: g.label(e.dst),
        };
        *counts.entry(f).or_insert(0) += 1;
    }
    let mut out: Vec<_> = counts.into_iter().collect();
    out.sort_by_key(|&(f, c)| (std::cmp::Reverse(c), f.src, f.edge, f.dst));
    out
}

/// Attribute symbols observed on nodes labeled `label` (first few).
fn attrs_of_label(g: &Graph, label: Sym) -> Vec<Sym> {
    for &n in g.extent(label).iter().take(16) {
        let attrs: Vec<Sym> = g.attrs(n).iter().map(|(a, _)| a).collect();
        if !attrs.is_empty() {
            return attrs;
        }
    }
    Vec::new()
}

/// A sample value of `label.attr` from the graph, if any.
fn sample_value(g: &Graph, label: Sym, attr: Sym, rng: &mut Rng) -> Option<gfd_graph::Value> {
    let extent = g.extent(label);
    if extent.is_empty() {
        return None;
    }
    for _ in 0..8 {
        let n: NodeId = extent[rng.gen_range(0..extent.len())];
        if let Some(v) = g.attr(n, attr) {
            return Some(v.clone());
        }
    }
    None
}

/// One grown component: builder var ids with their labels, hub first.
struct GrownComponent {
    vars: Vec<(VarId, Sym)>,
}

/// Grows a connected component of `size` nodes in `builder`, starting
/// from `seed` and extending with label-compatible features.
fn grow_component(
    b: &mut PatternBuilder,
    prefix: &str,
    seed: EdgeFeature,
    features: &[(EdgeFeature, usize)],
    size: usize,
    g: &Graph,
    rng: &mut Rng,
) -> GrownComponent {
    let vocab = g.vocab();
    let hub = b.node(&format!("{prefix}0"), &vocab.resolve(seed.src));
    let mut vars = vec![(hub, seed.src)];
    let first = b.node(&format!("{prefix}1"), &vocab.resolve(seed.dst));
    b.edge(hub, first, &vocab.resolve(seed.edge));
    vars.push((first, seed.dst));
    let mut next_id = 2usize;
    while vars.len() < size {
        // Attach a frequent feature at a random existing node.
        let &(anchor, anchor_label) = &vars[rng.gen_range(0..vars.len())];
        let candidates: Vec<&(EdgeFeature, usize)> = features
            .iter()
            .filter(|(f, _)| f.src == anchor_label)
            .take(6)
            .collect();
        let Some((f, _)) = rng.choose(&candidates).copied() else {
            // Nothing attaches here; try the hub's own features.
            if vars.len() >= 2 {
                break;
            }
            break;
        };
        let v = b.node(&format!("{prefix}{next_id}"), &vocab.resolve(f.dst));
        next_id += 1;
        b.edge(anchor, v, &vocab.resolve(f.edge));
        vars.push((v, f.dst));
    }
    GrownComponent { vars }
}

/// Rebuilds a pattern with its variables declared in reverse order
/// under fresh `t{tag}_`-prefixed names — an exact-label isomorphic
/// twin, the shape mined rule sets are full of (Example 10). Used by
/// tests and benchmarks to grow a Σ with guaranteed shared
/// isomorphism classes.
pub fn isomorphic_twin(q: &gfd_pattern::Pattern, tag: usize) -> gfd_pattern::Pattern {
    use gfd_pattern::PatLabel;
    let vocab = q.vocab().clone();
    let mut b = PatternBuilder::new(vocab.clone());
    let mut new_of = vec![VarId(u32::MAX); q.node_count()];
    for v in q.vars().collect::<Vec<_>>().into_iter().rev() {
        let name = format!("t{tag}_{}", v.index());
        new_of[v.index()] = match q.label(v) {
            PatLabel::Sym(s) => b.node(&name, &vocab.resolve(s)),
            PatLabel::Wildcard => b.wildcard_node(&name),
        };
    }
    for e in q.edges() {
        let (s, d) = (new_of[e.src.index()], new_of[e.dst.index()]);
        match e.label {
            PatLabel::Sym(l) => {
                b.edge(s, d, &vocab.resolve(l));
            }
            PatLabel::Wildcard => {
                b.wildcard_edge(s, d);
            }
        }
    }
    b.build()
}

/// Generates `Σ` from a graph following the paper's procedure.
pub fn mine_gfds(g: &Graph, cfg: &RuleGenConfig) -> GfdSet {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let features = mine_edge_features(g);
    assert!(
        !features.is_empty(),
        "cannot mine rules from an edgeless graph"
    );
    // Top-5 seeds (the paper's choice), plus lower-frequency seeds for
    // twin rules whose pivot extents must stay bounded.
    let top5: Vec<EdgeFeature> = features.iter().take(5).map(|&(f, _)| f).collect();
    let bounded: Vec<EdgeFeature> = features
        .iter()
        .filter(|(f, _)| {
            let ext = g.extent(f.src).len();
            ext >= 2 && ext <= cfg.max_pivot_extent
        })
        .take(10)
        .map(|&(f, _)| f)
        .collect();

    let mut rules = Vec::with_capacity(cfg.count);
    for i in 0..cfg.count {
        let twin = rng.gen_bool(cfg.two_component_fraction) && !bounded.is_empty();
        let gfd = if twin {
            let seed = bounded[rng.gen_range(0..bounded.len())];
            build_twin_rule(g, seed, &features, cfg.pattern_nodes, i, &mut rng)
        } else {
            let seed = top5[rng.gen_range(0..top5.len())];
            build_single_rule(g, seed, &features, cfg.pattern_nodes, i, &mut rng)
        };
        rules.push(gfd);
    }
    GfdSet::new(rules)
}

/// A twin (two-component) rule: `x_a.A = y_a.A → x_b.B = y_b.B`.
fn build_twin_rule(
    g: &Graph,
    seed: EdgeFeature,
    features: &[(EdgeFeature, usize)],
    size: usize,
    idx: usize,
    rng: &mut Rng,
) -> Gfd {
    let mut b = PatternBuilder::new(g.vocab().clone());
    let cx = grow_component(&mut b, &format!("x{idx}_"), seed, features, size, g, rng);
    // The twin mirrors the first component's shape exactly: replay it.
    let mut b2_vars = Vec::new();
    {
        // Rebuild y-side with identical labels by re-walking cx (the
        // edges were recorded in the builder; easiest is to grow with
        // the same RNG replay — instead we mirror structurally below).
        let vocab = g.vocab();
        for (j, &(_, label)) in cx.vars.iter().enumerate() {
            let v = b.node(&format!("y{idx}_{j}"), &vocab.resolve(label));
            b2_vars.push((v, label));
        }
    }
    // Mirror the edges of component x onto component y.
    let x_ids: Vec<VarId> = cx.vars.iter().map(|&(v, _)| v).collect();
    // Collect the x-side edges added so far by reconstructing from the
    // pattern after build; simpler: record them as we cannot query the
    // builder. We instead rebuild the whole pattern from scratch:
    let probe = b.build();
    let mut b = PatternBuilder::new(g.vocab().clone());
    let mut remap: HashMap<VarId, VarId> = HashMap::new();
    for v in probe.vars() {
        let nv = match probe.label(v) {
            gfd_pattern::PatLabel::Sym(s) => b.node(probe.var_name(v), &g.vocab().resolve(s)),
            gfd_pattern::PatLabel::Wildcard => b.wildcard_node(probe.var_name(v)),
        };
        remap.insert(v, nv);
    }
    for e in probe.edges() {
        if let gfd_pattern::PatLabel::Sym(s) = e.label {
            b.edge(remap[&e.src], remap[&e.dst], &g.vocab().resolve(s));
        } else {
            b.wildcard_edge(remap[&e.src], remap[&e.dst]);
        }
    }
    // Mirror x-edges to the y side.
    let y_of_x: HashMap<VarId, VarId> = x_ids
        .iter()
        .enumerate()
        .map(|(j, &xv)| (remap[&xv], remap[&b2_vars[j].0]))
        .collect();
    let mirrored: Vec<(VarId, VarId, gfd_pattern::PatLabel)> = probe
        .edges()
        .iter()
        .filter(|e| y_of_x.contains_key(&remap[&e.src]) && y_of_x.contains_key(&remap[&e.dst]))
        .map(|e| (y_of_x[&remap[&e.src]], y_of_x[&remap[&e.dst]], e.label))
        .collect();
    for (s, d, l) in mirrored {
        if let gfd_pattern::PatLabel::Sym(sym) = l {
            b.edge(s, d, &g.vocab().resolve(sym));
        } else {
            b.wildcard_edge(s, d);
        }
    }
    let q = b.build();

    // Literals: equate an attribute on the twin leaf pair (antecedent)
    // and on the twin hub pair (consequent) — the ϕ1 shape.
    let x_leaf = q.var_by_name(&format!("x{idx}_1")).expect("leaf exists");
    let y_leaf = q.var_by_name(&format!("y{idx}_1")).expect("leaf exists");
    let x_hub = q.var_by_name(&format!("x{idx}_0")).expect("hub exists");
    let y_hub = q.var_by_name(&format!("y{idx}_0")).expect("hub exists");
    let leaf_label = cx.vars[1].1;
    let hub_label = cx.vars[0].1;
    let leaf_attrs = attrs_of_label(g, leaf_label);
    let hub_attrs = attrs_of_label(g, hub_label);
    let val = *leaf_attrs.first().unwrap_or(&g.vocab().intern("val"));
    let dep = if let Some(&ha) = hub_attrs.first() {
        Dependency::new(
            vec![Literal::var_eq(x_leaf, val, y_leaf, val)],
            vec![Literal::var_eq(x_hub, ha, y_hub, ha)],
        )
    } else {
        // Hubs carry no attributes: require twin leaves to agree on val.
        Dependency::new(
            vec![Literal::var_eq(x_hub, val, y_hub, val)],
            vec![Literal::var_eq(x_leaf, val, y_leaf, val)],
        )
    };
    Gfd::new(format!("twin-{idx}"), q, dep)
}

/// A single-component rule with constant or variable literals.
fn build_single_rule(
    g: &Graph,
    seed: EdgeFeature,
    features: &[(EdgeFeature, usize)],
    size: usize,
    idx: usize,
    rng: &mut Rng,
) -> Gfd {
    let mut b = PatternBuilder::new(g.vocab().clone());
    let comp = grow_component(&mut b, &format!("v{idx}_"), seed, features, size, g, rng);
    let q = b.build();
    let vars = &comp.vars;

    // Prefer a constant rule grounded in actual values (CFD-style).
    let (anchor, anchor_label) = vars[rng.gen_range(0..vars.len())];
    let attrs = attrs_of_label(g, anchor_label);
    if let Some(&a) = attrs.first() {
        if let Some(v) = sample_value(g, anchor_label, a, rng) {
            // X: anchor.a = v → Y: other.b exists / equals sampled.
            let (other, other_label) = vars[(vars.len() - 1).min(1)];
            let other_attrs = attrs_of_label(g, other_label);
            let y_lit = match other_attrs.first() {
                Some(&oa) if other != anchor => Literal::var_eq(other, oa, other, oa),
                _ => Literal::var_eq(anchor, a, anchor, a),
            };
            return Gfd::new(
                format!("const-{idx}"),
                q,
                Dependency::new(vec![Literal::const_eq(anchor, a, v)], vec![y_lit]),
            );
        }
    }
    // Fallback: attribute-existence rule on the hub.
    let val = g.vocab().intern("val");
    let hub = vars[0].0;
    Gfd::new(
        format!("exist-{idx}"),
        q,
        Dependency::always(vec![Literal::var_eq(hub, val, hub, val)]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reallife::{reallife_graph, RealLifeConfig, RealLifeKind};

    fn sample_graph() -> Graph {
        reallife_graph(&RealLifeConfig {
            scale: 0.1,
            ..RealLifeConfig::new(RealLifeKind::Yago2)
        })
    }

    #[test]
    fn generates_requested_count() {
        let g = sample_graph();
        let sigma = mine_gfds(
            &g,
            &RuleGenConfig {
                count: 20,
                ..Default::default()
            },
        );
        assert_eq!(sigma.len(), 20);
    }

    #[test]
    fn pattern_sizes_respected() {
        let g = sample_graph();
        for target in [2usize, 4] {
            let sigma = mine_gfds(
                &g,
                &RuleGenConfig {
                    count: 10,
                    pattern_nodes: target,
                    two_component_fraction: 0.0,
                    ..Default::default()
                },
            );
            for gfd in &sigma {
                assert!(
                    gfd.pattern.node_count() >= 2 && gfd.pattern.node_count() <= target,
                    "pattern with {} nodes for target {target}",
                    gfd.pattern.node_count()
                );
            }
        }
    }

    #[test]
    fn twin_rules_have_two_isomorphic_components() {
        let g = sample_graph();
        let sigma = mine_gfds(
            &g,
            &RuleGenConfig {
                count: 10,
                two_component_fraction: 1.0,
                ..Default::default()
            },
        );
        let mut saw_twin = false;
        for gfd in &sigma {
            let comps = gfd_pattern::analysis::connected_components(&gfd.pattern);
            if comps.len() == 2 {
                saw_twin = true;
                let (a, _) = gfd.pattern.restrict(&comps[0]);
                let (b, _) = gfd.pattern.restrict(&comps[1]);
                assert!(gfd_pattern::isomorphic(&a, &b), "twins must mirror");
            }
        }
        assert!(saw_twin, "at least one twin rule generated");
    }

    #[test]
    fn twin_pivot_extents_bounded() {
        let g = sample_graph();
        let cfg = RuleGenConfig {
            count: 12,
            two_component_fraction: 1.0,
            max_pivot_extent: 100,
            ..Default::default()
        };
        let sigma = mine_gfds(&g, &cfg);
        for gfd in &sigma {
            let comps = gfd_pattern::analysis::connected_components(&gfd.pattern);
            if comps.len() != 2 {
                continue;
            }
            let pv = gfd_pattern::analysis::pivot_vector(&gfd.pattern);
            for c in &pv.components {
                if let gfd_pattern::PatLabel::Sym(s) = gfd.pattern.label(c.pivot) {
                    assert!(
                        g.extent(s).len() <= cfg.max_pivot_extent,
                        "twin pivot extent must be bounded"
                    );
                }
            }
        }
    }

    #[test]
    fn rules_are_deterministic() {
        let g = sample_graph();
        let cfg = RuleGenConfig {
            count: 8,
            ..Default::default()
        };
        let a = mine_gfds(&g, &cfg);
        let b = mine_gfds(&g, &cfg);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.pattern.node_count(), y.pattern.node_count());
        }
    }
}
