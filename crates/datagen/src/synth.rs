//! Synthetic power-law graphs (§7 "we also developed a generator…").
//!
//! Nodes are labeled from an alphabet of `labels` symbols (paper: 30)
//! with a Zipf-ish frequency distribution, each carries `attrs`
//! attributes (paper: 5) over an active domain of `domain` values
//! (paper: 1000), and edges follow a power-law out-degree: targets are
//! drawn Zipf-distributed over the node ids, so low-id nodes become
//! hubs. The `skew` exponent is the Fig. 8 knob — larger exponents
//! concentrate edges on fewer hubs, shrinking the paper's
//! `|G_dm| / |G_dm'|` ratio.

use gfd_graph::{Graph, GraphBuilder, NodeId, Value};
use gfd_util::Rng;

/// Synthetic-graph parameters.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Number of nodes `|V|`.
    pub nodes: usize,
    /// Number of edges `|E|`.
    pub edges: usize,
    /// Node-label alphabet size (paper: 30).
    pub labels: usize,
    /// Edge-label alphabet size.
    pub edge_labels: usize,
    /// Attributes per node (paper: 5).
    pub attrs: usize,
    /// Active attribute domain size (paper: 1000).
    pub domain: usize,
    /// Degree-skew exponent (≈1.0 mild, ≥2.0 heavily skewed).
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            nodes: 10_000,
            edges: 20_000,
            labels: 30,
            edge_labels: 10,
            attrs: 5,
            domain: 1000,
            skew: 1.2,
            seed: 0xF00D,
        }
    }
}

impl SynthConfig {
    /// The paper's synthetic shape (|E| = 2·|V|) at a given node count.
    pub fn sized(nodes: usize, seed: u64) -> Self {
        SynthConfig {
            nodes,
            edges: nodes * 2,
            seed,
            ..Default::default()
        }
    }
}

/// Draws an index in `0..n` with probability ∝ `1/(i+1)^skew`
/// (inverse-transform on a precomputed CDF).
pub(crate) struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    pub(crate) fn new(n: usize, skew: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(skew);
            cdf.push(acc);
        }
        ZipfSampler { cdf }
    }

    pub(crate) fn sample(&self, rng: &mut Rng) -> usize {
        let total = *self.cdf.last().expect("non-empty domain");
        let x: f64 = rng.gen_f64_range(0.0, total);
        self.cdf.partition_point(|&c| c < x).min(self.cdf.len() - 1)
    }
}

/// Generates a synthetic power-law graph.
pub fn synthetic_graph(cfg: &SynthConfig) -> Graph {
    assert!(cfg.nodes > 0 && cfg.labels > 0 && cfg.edge_labels > 0);
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut g = GraphBuilder::with_fresh_vocab();
    let vocab = g.vocab().clone();

    let labels: Vec<_> = (0..cfg.labels)
        .map(|i| vocab.intern(&format!("L{i}")))
        .collect();
    let edge_labels: Vec<_> = (0..cfg.edge_labels)
        .map(|i| vocab.intern(&format!("r{i}")))
        .collect();
    let attrs: Vec<_> = (0..cfg.attrs)
        .map(|i| vocab.intern(&format!("A{i}")))
        .collect();

    // Zipf label frequencies: label 0 is the most common.
    let label_sampler = ZipfSampler::new(cfg.labels, 1.0);
    for _ in 0..cfg.nodes {
        let l = labels[label_sampler.sample(&mut rng)];
        let n = g.add_node(l);
        for &a in &attrs {
            let v = rng.gen_range(0..cfg.domain);
            g.set_attr(n, a, Value::Str(format!("v{v}").into()));
        }
    }

    // Power-law targets, uniform sources.
    let target_sampler = ZipfSampler::new(cfg.nodes, cfg.skew);
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < cfg.edges && attempts < cfg.edges * 10 {
        attempts += 1;
        let src = NodeId(rng.gen_range(0..cfg.nodes) as u32);
        let dst = NodeId(target_sampler.sample(&mut rng) as u32);
        if src == dst {
            continue;
        }
        let el = edge_labels[rng.gen_range(0..cfg.edge_labels)];
        if g.add_edge(src, dst, el) {
            added += 1;
        }
    }
    g.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::GraphStats;

    #[test]
    fn respects_sizes() {
        let g = synthetic_graph(&SynthConfig {
            nodes: 500,
            edges: 1000,
            ..Default::default()
        });
        assert_eq!(g.node_count(), 500);
        // Dedup may drop a few attempted edges; generator retries.
        assert!(g.edge_count() >= 950, "got {}", g.edge_count());
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SynthConfig {
            nodes: 200,
            edges: 400,
            seed: 7,
            ..Default::default()
        };
        let a = synthetic_graph(&cfg);
        let b = synthetic_graph(&cfg);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        let ea: Vec<_> = a.edges().map(|e| (e.src, e.dst)).collect();
        let eb: Vec<_> = b.edges().map(|e| (e.src, e.dst)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn higher_skew_concentrates_degree() {
        let mild = synthetic_graph(&SynthConfig {
            nodes: 2000,
            edges: 6000,
            skew: 0.5,
            seed: 3,
            ..Default::default()
        });
        let heavy = synthetic_graph(&SynthConfig {
            nodes: 2000,
            edges: 6000,
            skew: 2.5,
            seed: 3,
            ..Default::default()
        });
        let s_mild = GraphStats::compute(&mild);
        let s_heavy = GraphStats::compute(&heavy);
        assert!(
            s_heavy.max_degree() > s_mild.max_degree() * 2,
            "skewed generator must produce bigger hubs ({} vs {})",
            s_heavy.max_degree(),
            s_mild.max_degree()
        );
    }

    #[test]
    fn attributes_present_with_domain() {
        let g = synthetic_graph(&SynthConfig {
            nodes: 100,
            edges: 100,
            attrs: 3,
            domain: 5,
            ..Default::default()
        });
        let a0 = g.vocab().lookup("A0").unwrap();
        for n in g.nodes() {
            let v = g.attr(n, a0).expect("every node has A0");
            let s = v.as_str().unwrap();
            assert!(s.starts_with('v'));
        }
    }

    #[test]
    fn zipf_sampler_prefers_low_indices() {
        let mut rng = Rng::seed_from_u64(1);
        let z = ZipfSampler::new(100, 1.5);
        let mut low = 0;
        for _ in 0..1000 {
            if z.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        assert!(low > 500, "first decile should dominate, got {low}/1000");
    }
}
