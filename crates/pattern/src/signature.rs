//! Isomorphism-invariant component signatures.
//!
//! The multi-query optimization of the appendix ("extracting common
//! sub-patterns", following [31]) needs to group the connected
//! components of many GFD patterns into isomorphism classes so that
//! per-component match enumeration is done once per class. A full
//! pairwise isomorphism test over `‖Σ‖` patterns is wasteful, so we
//! compute a cheap *signature* — a hash invariant under isomorphism
//! built from 1-dimensional Weisfeiler–Leman color refinement — and
//! only run exact [`crate::embed::isomorphic`] checks within a bucket.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::analysis::connected_components;
use crate::canon::iso_witness;
use crate::pattern::{PatLabel, Pattern, VarId};

/// A small, collision-free code per pattern label (shared with the
/// canonical-form encoder in [`crate::canon`]).
pub(crate) fn label_code(l: PatLabel) -> u64 {
    match l {
        PatLabel::Sym(s) => 2 + s.0 as u64,
        PatLabel::Wildcard => 1,
    }
}

fn hash_one<T: Hash>(t: &T) -> u64 {
    let mut h = DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

/// The final 1-WL color of every variable: up to `|V_Q|` rounds of
/// color refinement over labeled directed adjacency (enough for
/// convergence on patterns this small), stopping one round after the
/// partition turns discrete — with all colors distinct a node's color
/// identifies it, so the following round already encodes its exact
/// labeled neighborhood and further rounds cannot distinguish more.
/// The stopping round is determined by an isomorphism-invariant
/// property of the color multiset, so corresponding variables of
/// isomorphic patterns still get equal colors; that makes the colors
/// both a signature ingredient and the cell partition the canonical
/// form's permutation search respects.
pub(crate) fn wl_colors(q: &Pattern) -> Vec<u64> {
    let n = q.node_count();
    let mut colors: Vec<u64> = q.vars().map(|v| label_code(q.label(v))).collect();
    let discrete = |cs: &[u64]| {
        let mut sorted = cs.to_vec();
        sorted.sort_unstable();
        sorted.windows(2).all(|w| w[0] != w[1])
    };
    for _ in 0..n {
        let was_discrete = discrete(&colors);
        let mut next = Vec::with_capacity(n);
        for v in q.vars() {
            let mut out_sig: Vec<u64> = q
                .out(v)
                .iter()
                .map(|&(u, l)| hash_one(&(colors[u.index()], label_code(l), 0u8)))
                .collect();
            out_sig.sort_unstable();
            let mut in_sig: Vec<u64> = q
                .inn(v)
                .iter()
                .map(|&(u, l)| hash_one(&(colors[u.index()], label_code(l), 1u8)))
                .collect();
            in_sig.sort_unstable();
            next.push(hash_one(&(colors[v.index()], out_sig, in_sig)));
        }
        colors = next;
        if was_discrete {
            break;
        }
    }
    colors
}

/// An isomorphism-invariant signature of a whole pattern.
///
/// Equal patterns (up to isomorphism) get equal signatures; unequal
/// patterns get unequal signatures with high probability (collisions
/// are resolved by the exact witness check in [`group_isomorphic`]).
pub fn pattern_signature(q: &Pattern) -> u64 {
    let mut sorted = wl_colors(q);
    sorted.sort_unstable();
    hash_one(&(q.node_count(), q.edge_count(), sorted))
}

/// Signature of one connected component (given as its variable list).
pub fn component_signature(q: &Pattern, vars: &[VarId]) -> u64 {
    let (sub, _) = q.restrict(vars);
    pattern_signature(&sub)
}

/// Groups patterns into isomorphism classes; returns, per input index,
/// the class representative's index.
///
/// The signature is only a bucketing accelerator: membership within a
/// bucket is verified by the structural [`iso_witness`] search, so
/// 64-bit signature collisions — hash accidents as well as the
/// structural pairs 1-WL refinement cannot separate — never merge
/// distinct classes.
pub fn group_isomorphic(patterns: &[&Pattern]) -> Vec<usize> {
    let mut class = vec![usize::MAX; patterns.len()];
    let mut buckets: std::collections::HashMap<u64, Vec<usize>> = std::collections::HashMap::new();
    for (i, q) in patterns.iter().enumerate() {
        let sig = pattern_signature(q);
        let bucket = buckets.entry(sig).or_default();
        let mut found = None;
        for &j in bucket.iter() {
            if iso_witness(patterns[j], q).is_some() {
                found = Some(class[j]);
                break;
            }
        }
        class[i] = found.unwrap_or(i);
        bucket.push(i);
    }
    class
}

/// Splits a pattern into its connected components (as standalone
/// patterns) with, per component, the original variable of each new
/// variable — the decomposition step shared by the matcher and the
/// multi-query optimizer.
pub fn decompose(q: &Pattern) -> Vec<(Pattern, Vec<VarId>)> {
    connected_components(q)
        .into_iter()
        .map(|vars| q.restrict(&vars))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::isomorphic;
    use crate::pattern::PatternBuilder;
    use gfd_graph::Vocab;

    #[test]
    fn isomorphic_patterns_share_signature() {
        let vocab = Vocab::shared();
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "a");
        let y = b.node("y", "b");
        b.edge(x, y, "e");
        let p1 = b.build();

        let mut b = PatternBuilder::new(vocab);
        let y = b.node("q", "b");
        let x = b.node("p", "a");
        b.edge(x, y, "e");
        let p2 = b.build();

        assert_eq!(pattern_signature(&p1), pattern_signature(&p2));
    }

    #[test]
    fn different_shapes_differ() {
        let vocab = Vocab::shared();
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "a");
        let y = b.node("y", "a");
        b.edge(x, y, "e");
        let path = b.build();

        let mut b = PatternBuilder::new(vocab);
        let x = b.node("x", "a");
        let y = b.node("y", "a");
        b.edge(y, x, "e"); // reversed direction
        let rev = b.build();

        // Reversed edge on same labels IS isomorphic (rename x↔y), so
        // signatures must agree…
        assert_eq!(pattern_signature(&path), pattern_signature(&rev));

        // …but a 2-path differs from a single edge.
        let vocab = Vocab::shared();
        let mut b = PatternBuilder::new(vocab);
        let x = b.node("x", "a");
        let y = b.node("y", "a");
        let z = b.node("z", "a");
        b.edge(x, y, "e");
        b.edge(y, z, "e");
        let p2 = b.build();
        assert_ne!(pattern_signature(&path), pattern_signature(&p2));
    }

    #[test]
    fn direction_matters_when_labels_pin_roles() {
        let vocab = Vocab::shared();
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "a");
        let y = b.node("y", "b");
        b.edge(x, y, "e");
        let ab = b.build();

        let mut b = PatternBuilder::new(vocab);
        let x = b.node("x", "a");
        let y = b.node("y", "b");
        b.edge(y, x, "e");
        let ba = b.build();

        assert_ne!(pattern_signature(&ab), pattern_signature(&ba));
        assert!(!isomorphic(&ab, &ba));
    }

    #[test]
    fn grouping_collapses_duplicates() {
        let vocab = Vocab::shared();
        let mk = |names: [&str; 2]| {
            let mut b = PatternBuilder::new(vocab.clone());
            let x = b.node(names[0], "acct");
            let y = b.node(names[1], "blog");
            b.edge(x, y, "post");
            b.build()
        };
        let p1 = mk(["x", "y"]);
        let p2 = mk(["u", "v"]);
        let mut b = PatternBuilder::new(vocab);
        b.node("solo", "acct");
        let p3 = b.build();
        let classes = group_isomorphic(&[&p1, &p2, &p3]);
        assert_eq!(classes[0], classes[1]);
        assert_ne!(classes[0], classes[2]);
    }

    /// Regression: two non-isomorphic patterns engineered to collide
    /// on the 64-bit signature (uniform labels, every node with in-
    /// and out-degree 1 — 1-WL refinement never splits the colors, so
    /// two disjoint directed triangles hash exactly like one directed
    /// 6-cycle). The structural witness check must keep the classes
    /// apart anyway.
    #[test]
    fn signature_collision_does_not_merge_classes() {
        let vocab = Vocab::shared();
        let mut b = PatternBuilder::new(vocab.clone());
        let vs: Vec<VarId> = (0..6).map(|i| b.node(&format!("v{i}"), "n")).collect();
        for c in 0..2 {
            for i in 0..3 {
                b.edge(vs[3 * c + i], vs[3 * c + (i + 1) % 3], "e");
            }
        }
        let two_triangles = b.build();
        let mut b = PatternBuilder::new(vocab);
        let vs: Vec<VarId> = (0..6).map(|i| b.node(&format!("v{i}"), "n")).collect();
        for i in 0..6 {
            b.edge(vs[i], vs[(i + 1) % 6], "e");
        }
        let hexagon = b.build();

        assert_eq!(
            pattern_signature(&two_triangles),
            pattern_signature(&hexagon),
            "premise: the pair collides on the signature"
        );
        let classes = group_isomorphic(&[&two_triangles, &hexagon]);
        assert_ne!(classes[0], classes[1], "collision merged distinct classes");
    }

    #[test]
    fn decompose_round_trips_vars() {
        let vocab = Vocab::shared();
        let mut b = PatternBuilder::new(vocab);
        let x = b.node("x", "R");
        let y = b.node("y", "R");
        let z = b.node("z", "S");
        b.edge(x, z, "e");
        let q = b.build();
        let parts = decompose(&q);
        assert_eq!(parts.len(), 2);
        let all_vars: Vec<VarId> = parts.iter().flat_map(|(_, vs)| vs.clone()).collect();
        assert_eq!(all_vars.len(), 3);
        assert!(all_vars.contains(&x) && all_vars.contains(&y) && all_vars.contains(&z));
        // Component containing x also contains z.
        let comp_x = parts.iter().find(|(_, vs)| vs.contains(&x)).unwrap();
        assert!(comp_x.1.contains(&z));
        assert_eq!(comp_x.0.node_count(), 2);
    }
}
