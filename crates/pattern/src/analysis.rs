//! Structural analyses: connected components, eccentricities, pivots.
//!
//! §5.2 defines, for a GFD pattern `Q` with connected components
//! `(Q_1, …, Q_k)`, the *pivot* `z_i` of each `Q_i` as a node of
//! minimum radius (eccentricity over undirected shortest paths), and
//! the *pivot vector* `PV(ϕ) = ((z_1, c¹_Q), …, (z_k, c^k_Q))` pairing
//! each pivot with its radius. By the locality of subgraph
//! isomorphism, every node of a match is within `c^i_Q` undirected
//! hops of the pivot's image — the basis of the work-unit model.

use std::collections::VecDeque;

use crate::pattern::{Pattern, VarId};

/// One connected component of a pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentInfo {
    /// Variables in the component, ascending.
    pub vars: Vec<VarId>,
    /// The chosen pivot `z_i` (minimum eccentricity, ties broken by
    /// smaller variable id for determinism).
    pub pivot: VarId,
    /// The radius `c^i_Q` at the pivot.
    pub radius: usize,
}

/// The pivot vector `PV(ϕ)` of a pattern: one entry per component.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PivotVector {
    /// Per-component info, in ascending order of smallest member var.
    pub components: Vec<ComponentInfo>,
}

impl PivotVector {
    /// The arity `‖z̄‖` (number of connected components).
    pub fn arity(&self) -> usize {
        self.components.len()
    }

    /// The pivot variables `z̄`.
    pub fn pivots(&self) -> impl Iterator<Item = VarId> + '_ {
        self.components.iter().map(|c| c.pivot)
    }

    /// The largest component radius.
    pub fn max_radius(&self) -> usize {
        self.components.iter().map(|c| c.radius).max().unwrap_or(0)
    }
}

/// Undirected connected components of `q`, each sorted ascending;
/// components ordered by their smallest variable.
pub fn connected_components(q: &Pattern) -> Vec<Vec<VarId>> {
    let n = q.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0usize;
    for start in q.vars() {
        if comp[start.index()] != usize::MAX {
            continue;
        }
        let id = count;
        count += 1;
        let mut queue = VecDeque::from([start]);
        comp[start.index()] = id;
        while let Some(u) = queue.pop_front() {
            for v in q.neighbors(u) {
                if comp[v.index()] == usize::MAX {
                    comp[v.index()] = id;
                    queue.push_back(v);
                }
            }
        }
    }
    let mut out = vec![Vec::new(); count];
    for v in q.vars() {
        out[comp[v.index()]].push(v);
    }
    out
}

/// Eccentricity of `v` within its component (undirected BFS); `None`
/// if some component member is unreachable (cannot happen for members
/// of the same component).
fn eccentricity(q: &Pattern, v: VarId, members: &[VarId]) -> usize {
    let mut dist = vec![usize::MAX; q.node_count()];
    dist[v.index()] = 0;
    let mut queue = VecDeque::from([v]);
    while let Some(u) = queue.pop_front() {
        for w in q.neighbors(u) {
            if dist[w.index()] == usize::MAX {
                dist[w.index()] = dist[u.index()] + 1;
                queue.push_back(w);
            }
        }
    }
    members.iter().map(|m| dist[m.index()]).max().unwrap_or(0)
}

/// Computes the pivot vector `PV(ϕ)` of a pattern (paper: `O(|Q|²)`).
pub fn pivot_vector(q: &Pattern) -> PivotVector {
    let components = connected_components(q)
        .into_iter()
        .map(|vars| {
            let (pivot, radius) = vars
                .iter()
                .map(|&v| (v, eccentricity(q, v, &vars)))
                .min_by_key(|&(v, ecc)| (ecc, v))
                .expect("components are non-empty");
            ComponentInfo {
                vars,
                pivot,
                radius,
            }
        })
        .collect();
    PivotVector { components }
}

/// True if the whole pattern is a tree: connected and `|E| = |V| - 1`
/// (the tractable cases of Corollaries 4 and 8).
pub fn is_tree(q: &Pattern) -> bool {
    q.node_count() > 0 && connected_components(q).len() == 1 && q.edge_count() == q.node_count() - 1
}

/// True if every component is a tree (acyclic pattern forest).
pub fn is_forest(q: &Pattern) -> bool {
    connected_components(q)
        .iter()
        .map(|c| {
            let internal_edges = q
                .edges()
                .iter()
                .filter(|e| c.binary_search(&e.src).is_ok())
                .count();
            (c.len(), internal_edges)
        })
        .all(|(nodes, edges)| edges + 1 == nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternBuilder;
    use gfd_graph::Vocab;

    /// Q1 of Fig. 2: two star-shaped flight entities (disconnected).
    fn q1() -> Pattern {
        let mut b = PatternBuilder::new(Vocab::shared());
        let x = b.node("x", "flight");
        let leaves = ["id", "city", "city2", "time", "time2"];
        let edges = ["number", "from", "to", "depart", "arrive"];
        for (i, (leaf, edge)) in leaves.iter().zip(edges).enumerate() {
            let v = b.node(&format!("x{}", i + 1), leaf);
            b.edge(x, v, edge);
        }
        let y = b.node("y", "flight");
        for (i, (leaf, edge)) in leaves.iter().zip(edges).enumerate() {
            let v = b.node(&format!("y{}", i + 1), leaf);
            b.edge(y, v, edge);
        }
        b.build()
    }

    #[test]
    fn q1_has_two_components() {
        let q = q1();
        let comps = connected_components(&q);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 6);
        assert_eq!(comps[1].len(), 6);
    }

    #[test]
    fn q1_pivots_are_the_flight_hubs_with_radius_one() {
        // Example 9: PV(ϕ1) = ((x, 1), (y, 1)).
        let q = q1();
        let pv = pivot_vector(&q);
        assert_eq!(pv.arity(), 2);
        let x = q.var_by_name("x").unwrap();
        let y = q.var_by_name("y").unwrap();
        assert_eq!(pv.components[0].pivot, x);
        assert_eq!(pv.components[0].radius, 1);
        assert_eq!(pv.components[1].pivot, y);
        assert_eq!(pv.components[1].radius, 1);
        assert_eq!(pv.max_radius(), 1);
    }

    #[test]
    fn single_node_pattern_radius_zero() {
        // Q4's components (Example 9): PV(ϕ4) = ((x,0),(y,0)).
        let mut b = PatternBuilder::new(Vocab::shared());
        b.node("x", "R");
        b.node("y", "R");
        let q = b.build();
        let pv = pivot_vector(&q);
        assert_eq!(pv.arity(), 2);
        assert!(pv.components.iter().all(|c| c.radius == 0));
    }

    #[test]
    fn path_pivot_is_middle() {
        let mut b = PatternBuilder::new(Vocab::shared());
        let a = b.node("a", "t");
        let c = b.node("c", "t");
        let m = b.node("m", "t");
        b.edge(a, m, "e");
        b.edge(m, c, "e");
        let q = b.build();
        let pv = pivot_vector(&q);
        assert_eq!(pv.components[0].pivot, m);
        assert_eq!(pv.components[0].radius, 1);
    }

    #[test]
    fn tree_and_forest_checks() {
        let q = q1();
        assert!(!is_tree(&q), "Q1 is disconnected");
        assert!(is_forest(&q), "Q1's components are stars");

        // A triangle is neither.
        let mut b = PatternBuilder::new(Vocab::shared());
        let x = b.node("x", "t");
        let y = b.node("y", "t");
        let z = b.node("z", "t");
        b.edge(x, y, "l");
        b.edge(y, z, "l");
        b.edge(z, x, "l");
        let tri = b.build();
        assert!(!is_tree(&tri));
        assert!(!is_forest(&tri));

        // A star is a tree.
        let mut b = PatternBuilder::new(Vocab::shared());
        let hub = b.node("hub", "t");
        for i in 0..3 {
            let v = b.node(&format!("v{i}"), "t");
            b.edge(hub, v, "l");
        }
        let star = b.build();
        assert!(is_tree(&star));
        assert!(is_forest(&star));
    }

    #[test]
    fn radius_of_cycle() {
        let mut b = PatternBuilder::new(Vocab::shared());
        let vs: Vec<_> = (0..4).map(|i| b.node(&format!("v{i}"), "t")).collect();
        for i in 0..4 {
            b.edge(vs[i], vs[(i + 1) % 4], "e");
        }
        let q = b.build();
        let pv = pivot_vector(&q);
        assert_eq!(pv.components[0].radius, 2, "4-cycle has radius 2");
    }
}
