//! Canonical forms and explicit isomorphism witnesses.
//!
//! [`crate::signature`] buckets patterns by a 64-bit hash that is
//! *invariant* under isomorphism but not *complete*: non-isomorphic
//! patterns can collide, both by hash accident and structurally (1-WL
//! color refinement cannot separate, e.g., two directed triangles from
//! one directed 6-cycle). The canonical form closes that gap: two
//! patterns over one vocabulary have equal [`CanonicalForm::code`]s
//! **iff** they are isomorphic under exact label equality, and the
//! canonical variable order turns code equality into an explicit
//! [`IsoWitness`] bijection — the mapping along which the candidate-
//! space registry (`gfd-match`) transports simulation results between
//! isomorphic pattern components instead of re-simulating (the paper's
//! Example 10 observation, generalized from symmetric pairs to whole
//! rule sets).
//!
//! Exact label equality — not the directional `refines` of
//! [`crate::embed`] — is deliberate: a wildcard variable and a labeled
//! variable have different match sets, so transporting a candidate
//! space between them would be unsound even where an embedding exists.
//!
//! ## Algorithm
//!
//! Variables are partitioned by their final 1-WL color (an
//! isomorphism-invariant partition, so corresponding variables of
//! isomorphic patterns land in corresponding cells), cells are ordered
//! by color value, and the canonical order is the cell-respecting
//! permutation whose structure encoding is lexicographically smallest.
//! The encoding is built position-major (see [`Search`]) so the DFS
//! prunes every branch whose prefix already exceeds the incumbent —
//! symmetric uniform-label patterns (one big WL cell, `n!` orders)
//! collapse to near-linear work instead of `n!` full encodings. GFD
//! patterns are tiny anyway (`|Q| ≤ ~12` throughout the paper's
//! workloads) and WL refinement leaves singleton cells on anything
//! with non-uniform structure.

use std::collections::HashMap;

use crate::pattern::{Pattern, VarId};
use crate::signature::{label_code, wl_colors};

/// An explicit isomorphism between two patterns: `map[a_var] = b_var`
/// with exact label equality on nodes and edges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IsoWitness {
    map: Vec<VarId>,
}

impl IsoWitness {
    /// The identity witness on `n` variables.
    pub fn identity(n: usize) -> Self {
        IsoWitness {
            map: (0..n as u32).map(VarId).collect(),
        }
    }

    /// The image of variable `v` under the bijection.
    #[inline]
    pub fn map(&self, v: VarId) -> VarId {
        self.map[v.index()]
    }

    /// The full mapping, indexed by source variable.
    pub fn as_slice(&self) -> &[VarId] {
        &self.map
    }

    /// Consumes the witness into its mapping vector.
    pub fn into_map(self) -> Vec<VarId> {
        self.map
    }

    /// True if the witness is the identity mapping.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, v)| v.index() == i)
    }

    /// The inverse bijection (`b_var → a_var`).
    pub fn inverse(&self) -> IsoWitness {
        let mut map = vec![VarId(u32::MAX); self.map.len()];
        for (i, v) in self.map.iter().enumerate() {
            map[v.index()] = VarId(i as u32);
        }
        IsoWitness { map }
    }

    /// Structural verification: is this really an exact-label
    /// isomorphism from `a` onto `b`? Used in debug assertions and as
    /// the collision-proof membership check of
    /// [`crate::signature::group_isomorphic`].
    pub fn verify(&self, a: &Pattern, b: &Pattern) -> bool {
        let n = a.node_count();
        if n != b.node_count() || a.edge_count() != b.edge_count() || self.map.len() != n {
            return false;
        }
        // Bijectivity.
        let mut hit = vec![false; n];
        for &v in &self.map {
            if v.index() >= n || hit[v.index()] {
                return false;
            }
            hit[v.index()] = true;
        }
        // Exact node labels.
        for v in a.vars() {
            if a.label(v) != b.label(self.map(v)) {
                return false;
            }
        }
        // Every edge of `a` maps onto an equally labeled edge of `b`;
        // with equal (deduplicated) edge counts and an injective node
        // map this hits every edge of `b` exactly once.
        for e in a.edges() {
            let (s, d) = (self.map(e.src), self.map(e.dst));
            if !b.out(s).iter().any(|&(t, l)| t == d && l == e.label) {
                return false;
            }
        }
        true
    }
}

/// A pattern's canonical form: a complete structure encoding plus the
/// variable order that achieves it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanonicalForm {
    /// Structure encoding; equal across two patterns (sharing a
    /// vocabulary) iff the patterns are isomorphic with exact labels.
    code: Vec<u64>,
    /// `order[p]` is the original variable at canonical position `p`.
    order: Vec<VarId>,
}

impl CanonicalForm {
    /// The canonical encoding (hashable registry key).
    pub fn code(&self) -> &[u64] {
        &self.code
    }

    /// The canonical variable order (`order[p]` = variable at
    /// canonical position `p`).
    pub fn order(&self) -> &[VarId] {
        &self.order
    }

    /// Composes the two canonical orders into a witness from this
    /// form's pattern onto `other`'s pattern: the variables at equal
    /// canonical positions correspond.
    ///
    /// # Panics
    /// Panics if the codes differ (the patterns are not isomorphic).
    pub fn witness_onto(&self, other: &CanonicalForm) -> IsoWitness {
        assert_eq!(
            self.code, other.code,
            "witness_onto requires equal canonical codes"
        );
        let mut map = vec![VarId(u32::MAX); self.order.len()];
        for (p, v) in self.order.iter().enumerate() {
            map[v.index()] = other.order[p];
        }
        IsoWitness { map }
    }
}

/// The DFS state of the canonical search. The encoding is built
/// **position-major** so prefixes are placement-monotone: after the
/// fixed header `[n, e, labels in cell order…]` (the label section is
/// identical for every cell-respecting order — refinement only ever
/// splits the initial label partition, so a cell's members share one
/// label), each placed position `p` appends one *block* describing all
/// edges between `order[p]` and already-placed positions:
/// `[block_len, sorted (tag, other_pos, label) triples…]` with tag 0 =
/// self-loop, 1 = incoming from `other_pos`, 2 = outgoing to
/// `other_pos`. Every edge lands in exactly one block (its later
/// endpoint's), so the total code determines the pattern up to
/// renaming, its length is the same for every order — and a prefix
/// that already compares greater than the best-so-far can never lead
/// to a smaller code, which is what lets the search prune instead of
/// encoding all `Π |cell|!` orders (the fix for uniform-label
/// symmetric patterns, where one big cell would otherwise mean `n!`
/// full encodings).
struct Search<'a> {
    q: &'a Pattern,
    cells: Vec<Vec<VarId>>,
    used: Vec<bool>,
    /// `pos_of[var] = canonical position` for placed vars.
    pos_of: Vec<u32>,
    order: Vec<VarId>,
    code: Vec<u64>,
    best: Option<(Vec<u64>, Vec<VarId>)>,
}

impl Search<'_> {
    /// The edge block contributed by placing `v` at the next position.
    fn block(&self, v: VarId) -> Vec<(u64, u64, u64)> {
        let mut entries = Vec::new();
        for &(t, l) in self.q.out(v) {
            if t == v {
                entries.push((0, 0, label_code(l)));
            } else if self.used[t.index()] {
                entries.push((2, self.pos_of[t.index()] as u64, label_code(l)));
            }
        }
        for &(s, l) in self.q.inn(v) {
            if s != v && self.used[s.index()] {
                entries.push((1, self.pos_of[s.index()] as u64, label_code(l)));
            }
        }
        entries.sort_unstable();
        entries
    }

    fn run(&mut self, ci: usize) {
        if ci == self.cells.len() {
            if self
                .best
                .as_ref()
                .is_none_or(|(b, _)| self.code.as_slice() < b.as_slice())
            {
                self.best = Some((self.code.clone(), self.order.clone()));
            }
            return;
        }
        let placed = self.order.len() - self.cells[..ci].iter().map(Vec::len).sum::<usize>();
        if placed == self.cells[ci].len() {
            self.run(ci + 1);
            return;
        }
        for i in 0..self.cells[ci].len() {
            let v = self.cells[ci][i];
            if self.used[v.index()] {
                continue;
            }
            let mark = self.code.len();
            self.used[v.index()] = true;
            self.pos_of[v.index()] = self.order.len() as u32;
            self.order.push(v);
            let block = self.block(v);
            self.code.push(block.len() as u64);
            for (a, b, c) in block {
                self.code.extend([a, b, c]);
            }
            // Prune: final codes all have equal length, so a prefix
            // lexicographically above the incumbent cannot complete
            // into anything smaller.
            let viable = self.best.as_ref().is_none_or(|(b, _)| {
                let len = self.code.len().min(b.len());
                self.code.as_slice() <= &b[..len]
            });
            if viable {
                self.run(ci);
            }
            self.code.truncate(mark);
            self.order.pop();
            self.used[v.index()] = false;
        }
    }
}

/// Computes the canonical form of a pattern. See the module docs for
/// the algorithm and [`Search`] for the prefix-pruned encoding.
pub fn canonical_form(q: &Pattern) -> CanonicalForm {
    let n = q.node_count();
    let colors = wl_colors(q);
    // Cells: variables grouped by final WL color, cells ordered by
    // color value (isomorphism-invariant given a shared vocabulary).
    let mut vars: Vec<VarId> = q.vars().collect();
    vars.sort_by_key(|v| (colors[v.index()], v.0));
    let mut cells: Vec<Vec<VarId>> = Vec::new();
    for v in vars {
        match cells.last_mut() {
            Some(c) if colors[c[0].index()] == colors[v.index()] => c.push(v),
            _ => cells.push(vec![v]),
        }
    }
    let mut code = Vec::with_capacity(2 + n + n + 3 * q.edge_count());
    code.push(n as u64);
    code.push(q.edge_count() as u64);
    for cell in &cells {
        for &v in cell {
            code.push(label_code(q.label(v)));
        }
    }
    let mut s = Search {
        q,
        cells,
        used: vec![false; n],
        pos_of: vec![0; n],
        order: Vec::with_capacity(n),
        code,
        best: None,
    };
    s.run(0);
    let (code, order) = s.best.expect("at least one ordering exists");
    CanonicalForm { code, order }
}

/// Finds an exact-label isomorphism from `a` onto `b`, if one exists —
/// the structural check that is immune to signature collisions, and
/// the witness the candidate-space registry transports along.
pub fn iso_witness(a: &Pattern, b: &Pattern) -> Option<IsoWitness> {
    if a.node_count() != b.node_count() || a.edge_count() != b.edge_count() {
        return None;
    }
    let fa = canonical_form(a);
    let fb = canonical_form(b);
    if fa.code != fb.code {
        return None;
    }
    let w = fa.witness_onto(&fb);
    debug_assert!(w.verify(a, b), "canonical witness failed verification");
    Some(w)
}

/// Groups patterns into exact-label isomorphism classes using
/// canonical codes directly (no hash-collision exposure); returns, per
/// input index, the class representative's index and the witness
/// mapping the pattern onto that representative.
pub fn group_isomorphic_with_witnesses(patterns: &[&Pattern]) -> Vec<(usize, IsoWitness)> {
    let mut by_code: HashMap<Vec<u64>, usize> = HashMap::new();
    let mut forms: Vec<CanonicalForm> = Vec::with_capacity(patterns.len());
    let mut out = Vec::with_capacity(patterns.len());
    for (i, q) in patterns.iter().enumerate() {
        let form = canonical_form(q);
        let rep = *by_code.entry(form.code.clone()).or_insert(i);
        let witness = form.witness_onto(&if rep == i {
            form.clone()
        } else {
            forms[rep].clone()
        });
        forms.push(form);
        out.push((rep, witness));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternBuilder;
    use gfd_graph::Vocab;

    fn tri_pair(vocab: std::sync::Arc<Vocab>) -> Pattern {
        // Two disjoint directed 3-cycles, uniform labels.
        let mut b = PatternBuilder::new(vocab);
        let vs: Vec<VarId> = (0..6).map(|i| b.node(&format!("v{i}"), "n")).collect();
        for c in 0..2 {
            for i in 0..3 {
                b.edge(vs[3 * c + i], vs[3 * c + (i + 1) % 3], "e");
            }
        }
        b.build()
    }

    fn hexagon(vocab: std::sync::Arc<Vocab>) -> Pattern {
        // One directed 6-cycle, uniform labels.
        let mut b = PatternBuilder::new(vocab);
        let vs: Vec<VarId> = (0..6).map(|i| b.node(&format!("v{i}"), "n")).collect();
        for i in 0..6 {
            b.edge(vs[i], vs[(i + 1) % 6], "e");
        }
        b.build()
    }

    #[test]
    fn renamed_patterns_share_canonical_code() {
        let vocab = Vocab::shared();
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "a");
        let y = b.node("y", "b");
        b.edge(x, y, "e");
        let p1 = b.build();

        let mut b = PatternBuilder::new(vocab);
        let y = b.node("q", "b");
        let x = b.node("p", "a");
        b.edge(x, y, "e");
        let p2 = b.build();

        let (f1, f2) = (canonical_form(&p1), canonical_form(&p2));
        assert_eq!(f1.code(), f2.code());
        let w = f1.witness_onto(&f2);
        assert!(w.verify(&p1, &p2));
        assert!(w.inverse().verify(&p2, &p1));
    }

    #[test]
    fn witness_maps_labels_exactly() {
        let vocab = Vocab::shared();
        let mk = |names: [&str; 3], order_swapped: bool| {
            let mut b = PatternBuilder::new(vocab.clone());
            let ids: Vec<VarId> = if order_swapped {
                let z = b.node(names[2], "c");
                let x = b.node(names[0], "a");
                let y = b.node(names[1], "b");
                vec![x, y, z]
            } else {
                names
                    .iter()
                    .zip(["a", "b", "c"])
                    .map(|(n, l)| b.node(n, l))
                    .collect()
            };
            b.edge(ids[0], ids[1], "e");
            b.edge(ids[1], ids[2], "f");
            b.build()
        };
        let p = mk(["x", "y", "z"], false);
        let q = mk(["u", "v", "w"], true);
        let w = iso_witness(&p, &q).expect("isomorphic");
        // Labels pin every variable: x(a)→u(a), y(b)→v(b), z(c)→w(c).
        for v in p.vars() {
            assert_eq!(p.label(v), q.label(w.map(v)));
        }
        assert!(w.verify(&p, &q));
    }

    #[test]
    fn wl_collision_pair_is_separated() {
        // Two directed triangles vs one directed 6-cycle: same node
        // count, edge count, uniform labels and uniform 1-WL colors —
        // a *structural* signature collision (not a hash accident)…
        let vocab = Vocab::shared();
        let two_tri = tri_pair(vocab.clone());
        let c6 = hexagon(vocab);
        assert_eq!(
            crate::signature::pattern_signature(&two_tri),
            crate::signature::pattern_signature(&c6),
            "premise: 1-WL cannot separate the pair"
        );
        // …but canonical codes (and hence witnesses) tell them apart.
        assert_ne!(canonical_form(&two_tri).code(), canonical_form(&c6).code());
        assert!(iso_witness(&two_tri, &c6).is_none());
    }

    #[test]
    fn wildcard_and_labeled_do_not_transport() {
        // Embeddable both ways is not the transport relation: a
        // wildcard node has a different match set than a labeled one.
        let vocab = Vocab::shared();
        let mut b = PatternBuilder::new(vocab.clone());
        b.wildcard_node("x");
        let wild = b.build();
        let mut b = PatternBuilder::new(vocab);
        b.node("x", "a");
        let labeled = b.build();
        assert!(iso_witness(&wild, &labeled).is_none());
        assert!(iso_witness(&wild, &wild.clone()).is_some());
    }

    /// Regression for the permutation blowup: a uniform-label directed
    /// 12-cycle has one WL cell of 12 (`12! ≈ 4.8×10⁸` orders); the
    /// prefix-pruned search must canonicalize it instantly, and two
    /// rotated declarations must land on one code.
    #[test]
    fn uniform_cycle_canonicalizes_fast() {
        let vocab = Vocab::shared();
        let cycle = |rot: usize| {
            let mut b = PatternBuilder::new(vocab.clone());
            let vs: Vec<VarId> = (0..12).map(|i| b.node(&format!("v{i}"), "n")).collect();
            for i in 0..12 {
                b.edge(vs[(i + rot) % 12], vs[(i + rot + 1) % 12], "e");
            }
            b.build()
        };
        let t = std::time::Instant::now();
        let (a, b) = (cycle(0), cycle(5));
        assert_eq!(canonical_form(&a).code(), canonical_form(&b).code());
        let w = iso_witness(&a, &b).expect("rotations are isomorphic");
        assert!(w.verify(&a, &b));
        assert!(
            t.elapsed().as_secs() < 5,
            "canonical search must prune, not enumerate 12!"
        );
    }

    #[test]
    fn grouping_with_witnesses() {
        let vocab = Vocab::shared();
        let mk = |names: [&str; 2]| {
            let mut b = PatternBuilder::new(vocab.clone());
            let x = b.node(names[0], "acct");
            let y = b.node(names[1], "blog");
            b.edge(x, y, "post");
            b.build()
        };
        let p1 = mk(["x", "y"]);
        let p2 = mk(["v", "u"]);
        let mut b = PatternBuilder::new(vocab);
        b.node("solo", "acct");
        let p3 = b.build();
        let classes = group_isomorphic_with_witnesses(&[&p1, &p2, &p3]);
        assert_eq!(classes[0].0, 0);
        assert_eq!(classes[1].0, 0);
        assert_eq!(classes[2].0, 2);
        assert!(classes[0].1.is_identity());
        assert!(classes[1].1.verify(&p2, &p1));
    }

    #[test]
    fn self_loops_and_parallel_labels_round_trip() {
        let vocab = Vocab::shared();
        let mk = |swap: bool| {
            let mut b = PatternBuilder::new(vocab.clone());
            let (x, y) = if swap {
                let y = b.node("y", "t");
                let x = b.node("x", "t");
                (x, y)
            } else {
                (b.node("x", "t"), b.node("y", "t"))
            };
            b.edge(x, x, "loop");
            b.edge(x, y, "e");
            b.wildcard_edge(x, y);
            b.build()
        };
        let (a, b) = (mk(false), mk(true));
        let w = iso_witness(&a, &b).expect("isomorphic under swap");
        assert!(w.verify(&a, &b));
    }
}
