//! Pattern representation and builder.

use std::fmt;
use std::sync::Arc;

use gfd_graph::{Sym, Vocab};

/// A pattern variable; doubles as the index of its pattern node.
///
/// The paper's bijection `µ : x̄ → V_Q` is the identity on indices in
/// this representation, so "variable" and "pattern node" are used
/// interchangeably, exactly as the paper does.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// The variable as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

/// A pattern label: a concrete symbol or the wildcard `_`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PatLabel {
    /// Matches exactly this label.
    Sym(Sym),
    /// Matches any label (`'_'` in the paper).
    Wildcard,
}

impl PatLabel {
    /// Does a concrete graph label satisfy this pattern label?
    #[inline]
    pub fn admits(self, actual: Sym) -> bool {
        match self {
            PatLabel::Sym(s) => s == actual,
            PatLabel::Wildcard => true,
        }
    }

    /// Is `self` at least as specific as `other`? (Used for pattern-
    /// to-pattern embeddings: a wildcard pattern node may map onto any
    /// node, a labeled one only onto an equally labeled node.)
    #[inline]
    pub fn refines(self, other: PatLabel) -> bool {
        match (self, other) {
            (PatLabel::Wildcard, _) => true,
            (PatLabel::Sym(a), PatLabel::Sym(b)) => a == b,
            (PatLabel::Sym(_), PatLabel::Wildcard) => false,
        }
    }
}

/// A directed pattern edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PatternEdge {
    /// Source variable.
    pub src: VarId,
    /// Destination variable.
    pub dst: VarId,
    /// Edge label or wildcard.
    pub label: PatLabel,
}

/// Number of distinct variables in a pattern adjacency list — the
/// *sound* degree-pruning bound for matchers and embedders: distinct
/// neighbor variables map to distinct images (injectivity), so each
/// needs its own edge, but parallel pattern edges to one neighbor
/// (e.g. a labeled and a wildcard edge) can share a single image edge,
/// so counting edges would over-prune.
pub fn distinct_neighbors(adj: &[(VarId, PatLabel)]) -> usize {
    // Counts first occurrences by scanning the prefix — quadratic in
    // the adjacency length, but mined-rule lists hold a handful of
    // entries and this sits on warm matcher paths that must not
    // allocate.
    adj.iter()
        .enumerate()
        .filter(|&(i, &(v, _))| adj[..i].iter().all(|&(u, _)| u != v))
        .count()
}

/// A graph pattern `Q[x̄]`.
#[derive(Clone)]
pub struct Pattern {
    vocab: Arc<Vocab>,
    var_names: Vec<String>,
    node_labels: Vec<PatLabel>,
    edges: Vec<PatternEdge>,
    out_adj: Vec<Vec<(VarId, PatLabel)>>,
    in_adj: Vec<Vec<(VarId, PatLabel)>>,
}

impl Pattern {
    /// The vocabulary labels are interned in.
    pub fn vocab(&self) -> &Arc<Vocab> {
        &self.vocab
    }

    /// Number of pattern nodes `|V_Q| = ‖x̄‖`.
    pub fn node_count(&self) -> usize {
        self.node_labels.len()
    }

    /// Number of pattern edges `|E_Q|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// `|Q| = |V_Q| + |E_Q|`, the pattern-size measure of §7.
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// Iterates over all variables.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.node_labels.len() as u32).map(VarId)
    }

    /// The label constraint of variable `v`.
    pub fn label(&self, v: VarId) -> PatLabel {
        self.node_labels[v.index()]
    }

    /// The human-readable name of variable `v` (e.g. `"x"`, `"y1"`).
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.index()]
    }

    /// Looks a variable up by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.var_names
            .iter()
            .position(|n| n == name)
            .map(|i| VarId(i as u32))
    }

    /// All pattern edges.
    pub fn edges(&self) -> &[PatternEdge] {
        &self.edges
    }

    /// Outgoing `(dst, label)` pairs of `v`.
    pub fn out(&self, v: VarId) -> &[(VarId, PatLabel)] {
        &self.out_adj[v.index()]
    }

    /// Incoming `(src, label)` pairs of `v`.
    pub fn inn(&self, v: VarId) -> &[(VarId, PatLabel)] {
        &self.in_adj[v.index()]
    }

    /// Undirected neighbors of `v` (used for components/eccentricity).
    pub fn neighbors(&self, v: VarId) -> impl Iterator<Item = VarId> + '_ {
        self.out(v)
            .iter()
            .map(|&(u, _)| u)
            .chain(self.inn(v).iter().map(|&(u, _)| u))
    }

    /// Degree of `v` in the undirected skeleton (parallel edges counted).
    pub fn degree(&self, v: VarId) -> usize {
        self.out_adj[v.index()].len() + self.in_adj[v.index()].len()
    }

    /// True if the pattern's undirected skeleton is connected (the
    /// empty pattern counts as connected). Allocation-free for
    /// patterns of up to 128 variables — a `u128` visited bitmask and
    /// fixed-point sweeps instead of the component decomposition's
    /// queue — so hot match paths can take the single-component fast
    /// path without cloning anything.
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        if n > 128 {
            // Cold fallback: patterns this large never occur in mined
            // rule sets; an allocating BFS is fine.
            let mut seen = vec![false; n];
            let mut stack = vec![VarId(0)];
            seen[0] = true;
            let mut reached = 1;
            while let Some(u) = stack.pop() {
                for v in self.neighbors(u) {
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        reached += 1;
                        stack.push(v);
                    }
                }
            }
            return reached == n;
        }
        let full: u128 = if n == 128 {
            u128::MAX
        } else {
            (1u128 << n) - 1
        };
        let mut seen: u128 = 1;
        loop {
            let mut next = seen;
            for i in 0..n {
                if seen >> i & 1 == 1 {
                    for v in self.neighbors(VarId(i as u32)) {
                        next |= 1u128 << v.index();
                    }
                }
            }
            if next == seen {
                return seen == full;
            }
            seen = next;
        }
    }

    /// True if the pattern has an edge `src → dst` that `label` refines
    /// (i.e. an edge every match of which also satisfies `label`); used
    /// by pattern-to-pattern embeddings.
    pub fn has_edge_refining(&self, src: VarId, dst: VarId, label: PatLabel) -> bool {
        self.out(src)
            .iter()
            .any(|&(d, l)| d == dst && label.refines(l))
    }

    /// Restricts the pattern to `vars` (e.g. one connected component),
    /// returning the sub-pattern with renumbered variables and, per new
    /// variable, its original id.
    pub fn restrict(&self, vars: &[VarId]) -> (Pattern, Vec<VarId>) {
        let mut original = vars.to_vec();
        original.sort_unstable();
        original.dedup();
        let mut new_of_old = std::collections::HashMap::new();
        let mut b = PatternBuilder::new(self.vocab.clone());
        for &v in &original {
            let nv = b.push_node(self.var_name(v), self.label(v));
            new_of_old.insert(v, nv);
        }
        for e in &self.edges {
            if let (Some(&s), Some(&d)) = (new_of_old.get(&e.src), new_of_old.get(&e.dst)) {
                b.edges.push(PatternEdge {
                    src: s,
                    dst: d,
                    label: e.label,
                });
            }
        }
        (b.build(), original)
    }

    /// Pretty-prints with resolved label names, for diagnostics.
    pub fn display(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let lbl = |l: PatLabel| match l {
            PatLabel::Sym(sym) => self.vocab.resolve(sym).to_string(),
            PatLabel::Wildcard => "_".to_string(),
        };
        for v in self.vars() {
            let _ = write!(s, "{}:{} ", self.var_name(v), lbl(self.label(v)));
        }
        for e in &self.edges {
            let _ = write!(
                s,
                "({}-[{}]->{}) ",
                self.var_name(e.src),
                lbl(e.label),
                self.var_name(e.dst)
            );
        }
        s.trim_end().to_string()
    }
}

impl fmt::Debug for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pattern[{}]", self.display())
    }
}

/// Fluent builder for [`Pattern`].
///
/// ```
/// use gfd_graph::Vocab;
/// use gfd_pattern::PatternBuilder;
///
/// // Q2 of Fig. 2: a country with two capital edges.
/// let vocab = Vocab::shared();
/// let mut b = PatternBuilder::new(vocab);
/// let x = b.node("x", "country");
/// let y = b.node("y", "city");
/// let z = b.node("z", "city");
/// b.edge(x, y, "capital");
/// b.edge(x, z, "capital");
/// let q2 = b.build();
/// assert_eq!(q2.node_count(), 3);
/// assert_eq!(q2.size(), 5);
/// ```
pub struct PatternBuilder {
    vocab: Arc<Vocab>,
    var_names: Vec<String>,
    node_labels: Vec<PatLabel>,
    edges: Vec<PatternEdge>,
}

impl PatternBuilder {
    /// Starts a pattern over `vocab`.
    pub fn new(vocab: Arc<Vocab>) -> Self {
        PatternBuilder {
            vocab,
            var_names: Vec::new(),
            node_labels: Vec::new(),
            edges: Vec::new(),
        }
    }

    fn push_node(&mut self, name: &str, label: PatLabel) -> VarId {
        assert!(
            !self.var_names.iter().any(|n| n == name),
            "duplicate variable name `{name}`"
        );
        let id = VarId(self.var_names.len() as u32);
        self.var_names.push(name.to_string());
        self.node_labels.push(label);
        id
    }

    /// Adds a pattern node labeled `label`, bound to variable `name`.
    pub fn node(&mut self, name: &str, label: &str) -> VarId {
        let sym = self.vocab.intern(label);
        self.push_node(name, PatLabel::Sym(sym))
    }

    /// Adds a wildcard (`_`) pattern node.
    pub fn wildcard_node(&mut self, name: &str) -> VarId {
        self.push_node(name, PatLabel::Wildcard)
    }

    /// Adds a directed edge labeled `label`.
    pub fn edge(&mut self, src: VarId, dst: VarId, label: &str) -> &mut Self {
        let sym = self.vocab.intern(label);
        self.edges.push(PatternEdge {
            src,
            dst,
            label: PatLabel::Sym(sym),
        });
        self
    }

    /// Adds a directed edge with a wildcard label.
    pub fn wildcard_edge(&mut self, src: VarId, dst: VarId) -> &mut Self {
        self.edges.push(PatternEdge {
            src,
            dst,
            label: PatLabel::Wildcard,
        });
        self
    }

    /// Finishes the pattern. Duplicate edges (same endpoints and label)
    /// are dropped so that degree-based pruning stays sound.
    pub fn build(mut self) -> Pattern {
        self.edges
            .sort_by_key(|e| (e.src, e.dst, format!("{:?}", e.label)));
        self.edges.dedup();
        let n = self.var_names.len();
        let mut out_adj = vec![Vec::new(); n];
        let mut in_adj = vec![Vec::new(); n];
        for e in &self.edges {
            out_adj[e.src.index()].push((e.dst, e.label));
            in_adj[e.dst.index()].push((e.src, e.label));
        }
        Pattern {
            vocab: self.vocab,
            var_names: self.var_names,
            node_labels: self.node_labels,
            edges: self.edges,
            out_adj,
            in_adj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q3(vocab: Arc<Vocab>) -> Pattern {
        // Q3 of Fig. 2: generic is_a between two wildcards.
        let mut b = PatternBuilder::new(vocab);
        let x = b.wildcard_node("x");
        let y = b.wildcard_node("y");
        b.edge(y, x, "is_a");
        b.build()
    }

    #[test]
    fn build_and_inspect() {
        let vocab = Vocab::shared();
        let q = q3(vocab.clone());
        assert_eq!(q.node_count(), 2);
        assert_eq!(q.edge_count(), 1);
        assert_eq!(q.size(), 3);
        let x = q.var_by_name("x").unwrap();
        let y = q.var_by_name("y").unwrap();
        assert_eq!(q.label(x), PatLabel::Wildcard);
        assert_eq!(
            q.inn(x),
            &[(y, PatLabel::Sym(vocab.lookup("is_a").unwrap()))]
        );
        assert_eq!(q.var_name(y), "y");
    }

    #[test]
    fn wildcard_admits_everything() {
        let vocab = Vocab::shared();
        let a = vocab.intern("a");
        let b = vocab.intern("b");
        assert!(PatLabel::Wildcard.admits(a));
        assert!(PatLabel::Sym(a).admits(a));
        assert!(!PatLabel::Sym(a).admits(b));
    }

    #[test]
    fn refines_ordering() {
        let vocab = Vocab::shared();
        let a = PatLabel::Sym(vocab.intern("a"));
        let b = PatLabel::Sym(vocab.intern("b"));
        assert!(PatLabel::Wildcard.refines(a));
        assert!(PatLabel::Wildcard.refines(PatLabel::Wildcard));
        assert!(a.refines(a));
        assert!(!a.refines(b));
        assert!(!a.refines(PatLabel::Wildcard));
    }

    #[test]
    #[should_panic(expected = "duplicate variable name")]
    fn duplicate_names_rejected() {
        let mut b = PatternBuilder::new(Vocab::shared());
        b.node("x", "a");
        b.node("x", "b");
    }

    #[test]
    fn is_connected_matches_component_count() {
        let mut b = PatternBuilder::new(Vocab::shared());
        let x = b.node("x", "a");
        let y = b.node("y", "a");
        let z = b.node("z", "a");
        b.edge(x, y, "e");
        b.edge(y, z, "e");
        assert!(b.build().is_connected());

        let mut b = PatternBuilder::new(Vocab::shared());
        let x = b.node("x", "a");
        let y = b.node("y", "a");
        b.node("lone", "a");
        b.edge(x, y, "e");
        assert!(!b.build().is_connected());

        // Degenerate cases count as connected.
        assert!(PatternBuilder::new(Vocab::shared()).build().is_connected());
        let mut b = PatternBuilder::new(Vocab::shared());
        b.node("solo", "a");
        assert!(b.build().is_connected());

        // Direction is irrelevant: edges only into the start node.
        let mut b = PatternBuilder::new(Vocab::shared());
        let x = b.node("x", "a");
        let y = b.node("y", "a");
        b.edge(y, x, "e");
        assert!(b.build().is_connected());
    }

    #[test]
    fn has_edge_refining_respects_wildcards() {
        let vocab = Vocab::shared();
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "a");
        let y = b.node("y", "b");
        b.wildcard_edge(x, y);
        let q = b.build();
        // The wildcard edge refines nothing concrete but refines wildcard.
        assert!(q.has_edge_refining(x, y, PatLabel::Wildcard));
        assert!(!q.has_edge_refining(x, y, PatLabel::Sym(vocab.intern("e"))));
    }
}
