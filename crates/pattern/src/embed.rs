//! Pattern-to-pattern embeddings (§4).
//!
//! `Q'` is *embeddable* in `Q` if there is an isomorphic mapping `f`
//! from `Q'` onto a subgraph of `Q` preserving node and edge labels.
//! Embeddings drive both static analyses: an embedded GFD
//! `(Q, f(X') → f(Y'))` is derived from `(Q', X' → Y')` for every
//! embedding `f`, and closures are computed over the derived set.
//!
//! Wildcards make "preserving labels" directional: an embedding must
//! guarantee that every match of `Q` composes into a match of `Q'`, so
//! a `Q'` node labeled `τ` may only map to a `Q` node labeled `τ`
//! (never to a wildcard node, whose matches can have any label), while
//! a wildcard `Q'` node may map anywhere. The same applies to edges.
//! This is exactly [`PatLabel::refines`].

use crate::pattern::{distinct_neighbors, PatLabel, Pattern, VarId};

/// An embedding, represented as `map[sub_var] = sup_var`.
pub type Embedding = Vec<VarId>;

struct Search<'a> {
    sub: &'a Pattern,
    sup: &'a Pattern,
    /// Per-sub-var distinct out-/in-neighbor counts (degree pruning
    /// bounds, precomputed once — `compatible` is the hot path).
    min_out: Vec<usize>,
    min_in: Vec<usize>,
    /// Assignment `sub var → sup var` (u32::MAX = unassigned).
    assigned: Vec<VarId>,
    /// Which sup vars are already used (injectivity).
    used: Vec<bool>,
    /// Search order over sub vars.
    order: Vec<VarId>,
    out: Vec<Embedding>,
    stop_at_first: bool,
}

impl<'a> Search<'a> {
    fn compatible(&self, sv: VarId, gv: VarId) -> bool {
        if !self.sub.label(sv).refines(self.sup.label(gv)) {
            return false;
        }
        // Degree pruning: distinct sub neighbor vars map to distinct
        // sup nodes (injectivity), so each needs its own sup edge. Raw
        // edge counts would over-prune — parallel sub edges to one
        // neighbor (labeled + wildcard) can share a single sup edge.
        if self.min_out[sv.index()] > self.sup.out(gv).len()
            || self.min_in[sv.index()] > self.sup.inn(gv).len()
        {
            return false;
        }
        // Edges to already-assigned neighbors (and self-loops) must
        // exist in sup.
        for &(t, l) in self.sub.out(sv) {
            if t == sv {
                if !self.sup.has_edge_refining(gv, gv, l) {
                    return false;
                }
                continue;
            }
            let ta = self.assigned[t.index()];
            if ta.0 != u32::MAX && !self.sup.has_edge_refining(gv, ta, l) {
                return false;
            }
        }
        for &(s, l) in self.sub.inn(sv) {
            if s == sv {
                continue; // self-loops handled on the out side
            }
            let sa = self.assigned[s.index()];
            if sa.0 != u32::MAX && !self.sup.has_edge_refining(sa, gv, l) {
                return false;
            }
        }
        true
    }

    fn run(&mut self, depth: usize) -> bool {
        if depth == self.order.len() {
            self.out.push(self.assigned.clone());
            return self.stop_at_first;
        }
        let sv = self.order[depth];
        if self.assigned[sv.index()].0 != u32::MAX {
            // Pre-pinned variable: just validate it.
            let gv = self.assigned[sv.index()];
            if self.compatible_pinned(sv, gv) {
                return self.run(depth + 1);
            }
            return false;
        }
        for gv in self.sup.vars() {
            if self.used[gv.index()] || !self.compatible(sv, gv) {
                continue;
            }
            self.assigned[sv.index()] = gv;
            self.used[gv.index()] = true;
            if self.run(depth + 1) {
                return true;
            }
            self.assigned[sv.index()] = VarId(u32::MAX);
            self.used[gv.index()] = false;
        }
        false
    }

    /// Validation for pre-pinned vars: like `compatible` but the pin is
    /// already recorded in `assigned`, so skip self-comparison.
    fn compatible_pinned(&self, sv: VarId, gv: VarId) -> bool {
        if !self.sub.label(sv).refines(self.sup.label(gv)) {
            return false;
        }
        for &(t, l) in self.sub.out(sv) {
            if t == sv {
                if !self.sup.has_edge_refining(gv, gv, l) {
                    return false;
                }
                continue;
            }
            let ta = self.assigned[t.index()];
            if ta.0 != u32::MAX && !self.sup.has_edge_refining(gv, ta, l) {
                return false;
            }
        }
        for &(s, l) in self.sub.inn(sv) {
            if s == sv {
                continue;
            }
            let sa = self.assigned[s.index()];
            if sa.0 != u32::MAX && !self.sup.has_edge_refining(sa, gv, l) {
                return false;
            }
        }
        true
    }
}

/// A connectivity-aware search order: repeatedly pick the unvisited
/// variable with the most already-visited neighbors (ties: higher
/// degree, then smaller id).
fn search_order(q: &Pattern, pinned: &[VarId]) -> Vec<VarId> {
    let n = q.node_count();
    let mut visited = vec![false; n];
    let mut order: Vec<VarId> = Vec::with_capacity(n);
    for &p in pinned {
        if !visited[p.index()] {
            visited[p.index()] = true;
            order.push(p);
        }
    }
    while order.len() < n {
        let next = q
            .vars()
            .filter(|v| !visited[v.index()])
            .max_by_key(|&v| {
                let connected = q.neighbors(v).filter(|u| visited[u.index()]).count();
                (connected, q.degree(v), std::cmp::Reverse(v.0))
            })
            .expect("some variable is unvisited");
        visited[next.index()] = true;
        order.push(next);
    }
    order
}

fn search(
    sub: &Pattern,
    sup: &Pattern,
    pins: &[(VarId, VarId)],
    first_only: bool,
) -> Vec<Embedding> {
    if sub.node_count() > sup.node_count() || sub.edge_count() > sup.edge_count() {
        return Vec::new();
    }
    let mut assigned = vec![VarId(u32::MAX); sub.node_count()];
    let mut used = vec![false; sup.node_count()];
    for &(sv, gv) in pins {
        if used[gv.index()] {
            return Vec::new(); // two pins on one target: not injective
        }
        assigned[sv.index()] = gv;
        used[gv.index()] = true;
    }
    let pinned: Vec<VarId> = pins.iter().map(|&(sv, _)| sv).collect();
    let mut s = Search {
        sub,
        sup,
        min_out: sub.vars().map(|v| distinct_neighbors(sub.out(v))).collect(),
        min_in: sub.vars().map(|v| distinct_neighbors(sub.inn(v))).collect(),
        assigned,
        used,
        order: search_order(sub, &pinned),
        out: Vec::new(),
        stop_at_first: first_only,
    };
    s.run(0);
    s.out
}

/// All embeddings of `sub` into `sup`.
pub fn embeddings(sub: &Pattern, sup: &Pattern) -> Vec<Embedding> {
    search(sub, sup, &[], false)
}

/// All embeddings respecting the given `sub var → sup var` pins.
pub fn embeddings_with(sub: &Pattern, sup: &Pattern, pins: &[(VarId, VarId)]) -> Vec<Embedding> {
    search(sub, sup, pins, false)
}

/// True if at least one embedding exists.
pub fn is_embeddable(sub: &Pattern, sup: &Pattern) -> bool {
    !search(sub, sup, &[], true).is_empty()
}

/// Exact isomorphism: same sizes and embeddable both ways (which, with
/// equal sizes, forces label equality in both directions).
pub fn isomorphic(a: &Pattern, b: &Pattern) -> bool {
    a.node_count() == b.node_count()
        && a.edge_count() == b.edge_count()
        && is_embeddable(a, b)
        && is_embeddable(b, a)
}

/// Number of wildcard labels in a pattern (nodes + edges); a cheap
/// specificity measure used by heuristics.
pub fn wildcard_count(q: &Pattern) -> usize {
    q.vars()
        .filter(|&v| q.label(v) == PatLabel::Wildcard)
        .count()
        + q.edges()
            .iter()
            .filter(|e| e.label == PatLabel::Wildcard)
            .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternBuilder;
    use gfd_graph::Vocab;
    use std::sync::Arc;

    /// Q8 of Fig. 3: x:τ → y:τ, x → z:τ, y → z (labels all `l`).
    fn q8(vocab: Arc<Vocab>) -> Pattern {
        let mut b = PatternBuilder::new(vocab);
        let x = b.node("x", "tau");
        let y = b.node("y", "tau");
        let z = b.node("z", "tau");
        b.edge(x, y, "l");
        b.edge(x, z, "l");
        b.edge(y, z, "l");
        b.build()
    }

    /// Q9 of Fig. 3: Q8 plus w with y → w and w… (a DAG extension).
    fn q9(vocab: Arc<Vocab>) -> Pattern {
        let mut b = PatternBuilder::new(vocab);
        let x = b.node("x", "tau");
        let y = b.node("y", "tau");
        let z = b.node("z", "tau");
        let w = b.node("w", "tau");
        b.edge(x, y, "l");
        b.edge(x, z, "l");
        b.edge(y, z, "l");
        b.edge(y, w, "l");
        b.edge(z, w, "l");
        b.build()
    }

    #[test]
    fn q8_embeds_in_q9() {
        // Example 7's interaction: ϕ8 and ϕ9 conflict because Q8 is
        // isomorphic to a subgraph of Q9.
        let vocab = Vocab::shared();
        let sub = q8(vocab.clone());
        let sup = q9(vocab);
        assert!(is_embeddable(&sub, &sup));
        let embs = embeddings(&sub, &sup);
        // x→x, y→y, z→z is one; x→y? y needs out-deg 2 over {z,w}: y→z,
        // y→w but then need z'→w' edge between images: z→? no z→w edge
        // exists... in our q9 z→w exists, so x→y, y→z, z→w also embeds.
        assert!(!embs.is_empty());
        let x = sub.var_by_name("x").unwrap();
        let sx = sup.var_by_name("x").unwrap();
        assert!(embs.iter().any(|m| m[x.index()] == sx));
    }

    #[test]
    fn q9_does_not_embed_in_q8() {
        let vocab = Vocab::shared();
        assert!(!is_embeddable(&q9(vocab.clone()), &q8(vocab)));
    }

    #[test]
    fn pinned_embeddings_filter() {
        let vocab = Vocab::shared();
        let sub = q8(vocab.clone());
        let sup = q9(vocab);
        let x = sub.var_by_name("x").unwrap();
        let sy = sup.var_by_name("y").unwrap();
        let pinned = embeddings_with(&sub, &sup, &[(x, sy)]);
        for m in &pinned {
            assert_eq!(m[x.index()], sy);
        }
        // x→y requires y to have out-degree ≥ 2 (it does: z and w) and
        // an edge between the two targets (z→w exists): 1 embedding.
        assert_eq!(pinned.len(), 1);
    }

    #[test]
    fn wildcard_direction() {
        let vocab = Vocab::shared();
        // sub: wildcard node --is_a--> wildcard node
        let mut b = PatternBuilder::new(vocab.clone());
        let sx = b.wildcard_node("x");
        let sy = b.wildcard_node("y");
        b.edge(sy, sx, "is_a");
        let sub = b.build();
        // sup: penguin --is_a--> bird
        let mut b = PatternBuilder::new(vocab.clone());
        let bx = b.node("bird", "bird");
        let py = b.node("peng", "penguin");
        b.edge(py, bx, "is_a");
        let sup = b.build();
        assert!(is_embeddable(&sub, &sup), "wildcards embed onto labels");
        assert!(
            !is_embeddable(&sup, &sub),
            "labels don't embed onto wildcards"
        );
    }

    #[test]
    fn injectivity_is_enforced() {
        let vocab = Vocab::shared();
        // sub: two disconnected τ nodes; sup: one τ node.
        let mut b = PatternBuilder::new(vocab.clone());
        b.node("a", "tau");
        b.node("b", "tau");
        let sub = b.build();
        let mut b = PatternBuilder::new(vocab);
        b.node("only", "tau");
        let sup = b.build();
        assert!(!is_embeddable(&sub, &sup));
    }

    #[test]
    fn isomorphism_detects_renaming() {
        let vocab = Vocab::shared();
        let a = q8(vocab.clone());
        // Same shape, variables declared in a different order.
        let mut b = PatternBuilder::new(vocab.clone());
        let z = b.node("c", "tau");
        let x = b.node("a", "tau");
        let y = b.node("b", "tau");
        b.edge(x, y, "l");
        b.edge(x, z, "l");
        b.edge(y, z, "l");
        let a2 = b.build();
        assert!(isomorphic(&a, &a2));
        assert!(!isomorphic(&a, &q9(vocab)));
    }

    #[test]
    fn edge_label_must_match() {
        let vocab = Vocab::shared();
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "t");
        let y = b.node("y", "t");
        b.edge(x, y, "likes");
        let sub = b.build();
        let mut b = PatternBuilder::new(vocab);
        let x = b.node("x", "t");
        let y = b.node("y", "t");
        b.edge(x, y, "follows");
        let sup = b.build();
        assert!(!is_embeddable(&sub, &sup));
    }

    #[test]
    fn disconnected_sub_embeds_across_sup() {
        let vocab = Vocab::shared();
        // sub: two isolated τ nodes; sup: τ→τ edge. Both components of
        // sub must land injectively in sup.
        let mut b = PatternBuilder::new(vocab.clone());
        b.node("a", "tau");
        b.node("b", "tau");
        let sub = b.build();
        let mut b = PatternBuilder::new(vocab);
        let x = b.node("x", "tau");
        let y = b.node("y", "tau");
        b.edge(x, y, "l");
        let sup = b.build();
        let embs = embeddings(&sub, &sup);
        assert_eq!(embs.len(), 2, "a,b can map to x,y in two orders");
    }
}
