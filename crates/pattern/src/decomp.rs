//! Tree decompositions of pattern graphs — the planner's structure
//! analysis.
//!
//! Mined GFD rule sets are full of small cyclic components (triangles,
//! 4-cycles, diamonds); enumerating them edge-at-a-time pays the worst
//! intermediate-result blowup of a bad branch order. Decomposition-
//! based plans (Abo Khamis/Ngo/Suciu's FAQ/submodular-width line)
//! instead bound enumeration by the width of a *tree decomposition* of
//! the pattern's undirected skeleton: each bag is solved as one
//! multiway join, and bags are stitched along the tree, where the
//! running-intersection property makes the stitch a plain equi-join.
//!
//! Decompositions here come from *elimination orders*: eliminating
//! variable `v` creates the bag `{v} ∪ N(v)` over the current fill
//! graph, then turns `N(v)` into a clique. For the ≤[`EXACT_MAX_VARS`]
//! -variable components mined rules produce we find a minimum-width
//! order exactly (depth-first branch-and-bound over orders, ~8! leaves
//! before pruning); larger patterns fall back to the min-fill greedy
//! heuristic. Both searches break ties toward the smallest variable
//! id, so the result is a pure deterministic function of the pattern —
//! the property the per-class plan cache in the matcher's registry
//! relies on. Connected acyclic patterns always get width 1.

use crate::pattern::{Pattern, VarId};

/// Patterns with at most this many variables get an exact
/// minimum-width elimination order; larger ones use min-fill.
pub const EXACT_MAX_VARS: usize = 8;

/// Adjacency bitmasks cap the pattern size the decomposition handles;
/// beyond it a trivial one-bag decomposition is returned (callers
/// treat its width as "too wide to plan").
const MAX_VARS: usize = 128;

/// One bag of a tree decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bag {
    /// Variables in the bag, ascending.
    pub vars: Vec<VarId>,
    /// Parent bag index (`None` for each tree root — disconnected
    /// patterns yield a forest, one tree per component).
    pub parent: Option<usize>,
}

/// A tree decomposition of a pattern's undirected skeleton: every
/// variable and every edge is covered by some bag, and the bags
/// containing any fixed variable form a connected subtree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeDecomposition {
    /// The bags; subset bags are contracted away, so tree-adjacent
    /// bags are always incomparable.
    pub bags: Vec<Bag>,
    width: usize,
}

impl TreeDecomposition {
    /// The width: largest bag size minus one. Width ≤ 1 means the
    /// pattern is a forest and the plain backtracker is already
    /// worst-case optimal; width ≥ 2 marks a cyclic pattern whose bags
    /// are worth a multiway intersection step.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of bags.
    pub fn bag_count(&self) -> usize {
        self.bags.len()
    }

    /// The first bag containing `v` (its *home* bag), if any.
    pub fn home_bag(&self, v: VarId) -> Option<usize> {
        self.bags.iter().position(|b| b.vars.contains(&v))
    }

    /// The variables a bag shares with its parent — the *separator*
    /// that conditions the bag's residual solve in a fused execution.
    /// By the running-intersection property this is exactly the set of
    /// bag variables already bound when the bag is entered in
    /// parent-before-child order. Root bags have an empty separator.
    pub fn separator(&self, bag: usize) -> impl Iterator<Item = VarId> + '_ {
        let b = &self.bags[bag];
        let parent = b.parent.map(|p| &self.bags[p]);
        b.vars
            .iter()
            .copied()
            .filter(move |v| parent.is_some_and(|p| p.vars.contains(v)))
    }

    /// The largest separator size over all bags — the factorization
    /// layer's memoization-key width (a factorized representation keys
    /// shared subtrees by separator bindings, so this bounds the key).
    pub fn max_separator(&self) -> usize {
        (0..self.bags.len())
            .map(|b| self.separator(b).count())
            .max()
            .unwrap_or(0)
    }

    /// Per-variable bitmask of the bags containing it, or `None` when
    /// the decomposition has more than 128 bags. Two variables
    /// *co-occur* iff their masks intersect; pairs that never co-occur
    /// are exactly the pairs a bag-local evaluation cannot compare —
    /// the factorization layer's exactness precondition reads off
    /// these masks.
    pub fn var_bag_masks(&self, n_vars: usize) -> Option<Vec<u128>> {
        let mut masks = Vec::new();
        self.var_bag_masks_into(n_vars, &mut masks).then_some(masks)
    }

    /// [`Self::var_bag_masks`] into a caller-owned buffer — the
    /// allocation-free form for warm counting loops. Returns `false`
    /// (leaving the buffer cleared) past 128 bags.
    pub fn var_bag_masks_into(&self, n_vars: usize, masks: &mut Vec<u128>) -> bool {
        masks.clear();
        if self.bags.len() > 128 {
            return false;
        }
        masks.resize(n_vars, 0);
        for (bi, bag) in self.bags.iter().enumerate() {
            for v in &bag.vars {
                masks[v.index()] |= 1u128 << bi;
            }
        }
        true
    }

    /// Transports the decomposition along a variable bijection —
    /// plans are isomorphism-invariant, so a decomposition computed
    /// once on a canonical class representative serves every member
    /// after mapping each bag through the member's witness.
    pub fn relabel(&self, map: impl Fn(VarId) -> VarId) -> TreeDecomposition {
        let bags = self
            .bags
            .iter()
            .map(|b| {
                let mut vars: Vec<VarId> = b.vars.iter().map(|&v| map(v)).collect();
                vars.sort_unstable();
                Bag {
                    vars,
                    parent: b.parent,
                }
            })
            .collect();
        TreeDecomposition {
            bags,
            width: self.width,
        }
    }
}

/// Undirected adjacency bitmasks of the pattern (self-loops dropped —
/// a self-loop constrains one variable and never widens a bag).
fn adjacency(q: &Pattern) -> Vec<u128> {
    let n = q.node_count();
    let mut adj = vec![0u128; n];
    for e in q.edges() {
        if e.src != e.dst {
            adj[e.src.index()] |= 1u128 << e.dst.index();
            adj[e.dst.index()] |= 1u128 << e.src.index();
        }
    }
    adj
}

/// Eliminates `v`: connects its remaining neighbors into a clique.
fn absorb_clique(adj: &mut [u128], nbrs: u128) {
    let mut m = nbrs;
    while m != 0 {
        let i = m.trailing_zeros() as usize;
        m &= m - 1;
        adj[i] |= nbrs & !(1u128 << i);
    }
}

/// Min-fill greedy elimination order: repeatedly eliminate the
/// variable whose remaining neighborhood needs the fewest fill edges
/// to become a clique, ties broken toward the smallest variable id.
fn min_fill_order(mut adj: Vec<u128>, n: usize) -> Vec<usize> {
    let mut remaining: u128 = if n == 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    };
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best_v = usize::MAX;
        let mut best_fill = usize::MAX;
        for v in 0..n {
            if remaining >> v & 1 == 0 {
                continue;
            }
            let nbrs = adj[v] & remaining & !(1u128 << v);
            let mut fill = 0usize;
            let mut m = nbrs;
            while m != 0 {
                let i = m.trailing_zeros() as usize;
                m &= m - 1;
                // Missing edges from i to later members of nbrs.
                fill += (m & !adj[i]).count_ones() as usize;
            }
            if fill < best_fill {
                best_fill = fill;
                best_v = v;
            }
        }
        let nbrs = adj[best_v] & remaining & !(1u128 << best_v);
        absorb_clique(&mut adj, nbrs);
        remaining &= !(1u128 << best_v);
        order.push(best_v);
    }
    order
}

/// Depth-first branch-and-bound over all elimination orders, keeping
/// the first order achieving each strictly better width — with the
/// ascending variable sweep that makes the winner deterministic.
fn exact_order(adj: &[u128], n: usize) -> Vec<usize> {
    let full: u128 = (1u128 << n) - 1;
    let mut best = (usize::MAX, Vec::new());
    let mut order = Vec::with_capacity(n);
    fn bb(
        adj: &[u128],
        n: usize,
        remaining: u128,
        cur_max: usize,
        order: &mut Vec<usize>,
        best: &mut (usize, Vec<usize>),
    ) {
        if remaining == 0 {
            if cur_max < best.0 {
                *best = (cur_max, order.clone());
            }
            return;
        }
        for v in 0..n {
            if remaining >> v & 1 == 0 {
                continue;
            }
            let nbrs = adj[v] & remaining & !(1u128 << v);
            let new_max = cur_max.max(nbrs.count_ones() as usize + 1);
            if new_max >= best.0 {
                continue;
            }
            let mut next = adj.to_vec();
            absorb_clique(&mut next, nbrs);
            order.push(v);
            bb(&next, n, remaining & !(1u128 << v), new_max, order, best);
            order.pop();
        }
    }
    bb(adj, n, full, 0, &mut order, &mut best);
    debug_assert_eq!(best.1.len(), n);
    best.1
}

/// Replays an elimination order into bags and tree edges, then
/// contracts subset bags (a bag that is a subset of a tree-adjacent
/// bag is merged into it — elimination orders of chordal fragments
/// produce runs of shrinking bags that collapse this way, e.g. a
/// triangle's `{x,y,z} ⊇ {y,z} ⊇ {z}` becomes the single bag
/// `{x,y,z}`).
fn decomposition_from_order(q: &Pattern, order: &[usize]) -> TreeDecomposition {
    let n = order.len();
    let mut adj = adjacency(q);
    let mut remaining: u128 = if n == 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    };
    let mut pos = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v] = i;
    }
    // One provisional bag per eliminated variable; parent = home bag
    // of the earliest-eliminated remaining neighbor.
    let mut masks = Vec::with_capacity(n);
    let mut parents: Vec<Option<usize>> = Vec::with_capacity(n);
    for &v in order {
        let nbrs = adj[v] & remaining & !(1u128 << v);
        masks.push(nbrs | (1u128 << v));
        let mut parent_var = None;
        let mut m = nbrs;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            if parent_var.is_none_or(|p: usize| pos[i] < pos[p]) {
                parent_var = Some(i);
            }
        }
        // The parent bag is where that neighbor is later eliminated —
        // its index in `masks` is its elimination position.
        parents.push(parent_var.map(|u| pos[u]));
        absorb_clique(&mut adj, nbrs);
        remaining &= !(1u128 << v);
    }
    // Contract: merge any bag into a tree-adjacent superset until no
    // comparable adjacent pair remains. (From an elimination order the
    // superset is always the child, but the loop handles both ways.)
    let mut alive = vec![true; n];
    loop {
        let mut merged = false;
        for b in 0..n {
            if !alive[b] {
                continue;
            }
            let Some(p) = parents[b] else { continue };
            debug_assert!(alive[p]);
            let (keep, drop) = if masks[p] & !masks[b] == 0 {
                (b, p) // parent ⊆ child: child absorbs parent.
            } else if masks[b] & !masks[p] == 0 {
                (p, b) // child ⊆ parent.
            } else {
                continue;
            };
            if keep == b {
                parents[b] = parents[p];
            }
            for other in 0..n {
                if alive[other] && other != drop && parents[other] == Some(drop) {
                    parents[other] = Some(keep);
                }
            }
            alive[drop] = false;
            merged = true;
        }
        if !merged {
            break;
        }
    }
    // Compact the surviving bags.
    let mut new_index = vec![usize::MAX; n];
    let mut count = 0usize;
    for b in 0..n {
        if alive[b] {
            new_index[b] = count;
            count += 1;
        }
    }
    let mut bags = Vec::with_capacity(count);
    let mut width = 0usize;
    for b in 0..n {
        if !alive[b] {
            continue;
        }
        let mut vars = Vec::with_capacity(masks[b].count_ones() as usize);
        let mut m = masks[b];
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            vars.push(VarId(i as u32));
        }
        width = width.max(vars.len().saturating_sub(1));
        bags.push(Bag {
            vars,
            parent: parents[b].map(|p| new_index[p]),
        });
    }
    TreeDecomposition { bags, width }
}

/// Computes a tree decomposition of the pattern's undirected skeleton.
///
/// Exact minimum width for patterns of up to [`EXACT_MAX_VARS`]
/// variables, min-fill greedy beyond; both deterministic. Disconnected
/// patterns yield a forest (one root bag per component). Patterns
/// larger than 128 variables get a trivial single-bag decomposition
/// whose width (`n − 1`) callers read as "unplannable".
pub fn tree_decomposition(q: &Pattern) -> TreeDecomposition {
    let n = q.node_count();
    if n == 0 {
        return TreeDecomposition {
            bags: Vec::new(),
            width: 0,
        };
    }
    if n > MAX_VARS {
        let vars: Vec<VarId> = q.vars().collect();
        return TreeDecomposition {
            width: n - 1,
            bags: vec![Bag { vars, parent: None }],
        };
    }
    let adj = adjacency(q);
    let order = if n <= EXACT_MAX_VARS {
        exact_order(&adj, n)
    } else {
        min_fill_order(adj, n)
    };
    decomposition_from_order(q, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternBuilder;
    use gfd_graph::Vocab;

    /// Structural validity: every variable covered, every edge inside
    /// some bag, and per-variable bag occurrences form a connected
    /// subtree (running intersection).
    fn verify(td: &TreeDecomposition, q: &Pattern) {
        for v in q.vars() {
            assert!(
                td.home_bag(v).is_some(),
                "variable {v:?} not covered by any bag"
            );
        }
        for e in q.edges() {
            assert!(
                td.bags
                    .iter()
                    .any(|b| b.vars.contains(&e.src) && b.vars.contains(&e.dst)),
                "edge {:?}→{:?} not covered",
                e.src,
                e.dst
            );
        }
        for v in q.vars() {
            let holders: Vec<usize> = (0..td.bags.len())
                .filter(|&i| td.bags[i].vars.contains(&v))
                .collect();
            // Each holder except the one closest to the root must have
            // a parent that also holds v.
            let root_holders = holders
                .iter()
                .filter(|&&i| {
                    td.bags[i]
                        .parent
                        .is_none_or(|p| !td.bags[p].vars.contains(&v))
                })
                .count();
            assert_eq!(root_holders, 1, "occurrences of {v:?} are not a subtree");
        }
    }

    fn cycle(n: usize) -> Pattern {
        let mut b = PatternBuilder::new(Vocab::shared());
        let vs: Vec<VarId> = (0..n).map(|i| b.node(&format!("v{i}"), "t")).collect();
        for i in 0..n {
            b.edge(vs[i], vs[(i + 1) % n], "e");
        }
        b.build()
    }

    #[test]
    fn triangle_is_one_bag_of_width_two() {
        let q = cycle(3);
        let td = tree_decomposition(&q);
        verify(&td, &q);
        assert_eq!(td.width(), 2);
        assert_eq!(td.bag_count(), 1);
        assert_eq!(td.bags[0].vars, vec![VarId(0), VarId(1), VarId(2)]);
        assert_eq!(td.bags[0].parent, None);
    }

    #[test]
    fn four_cycle_is_two_overlapping_bags() {
        let q = cycle(4);
        let td = tree_decomposition(&q);
        verify(&td, &q);
        assert_eq!(td.width(), 2);
        assert_eq!(td.bag_count(), 2);
        // The two bags share exactly the chord pair.
        let shared: Vec<VarId> = td.bags[0]
            .vars
            .iter()
            .copied()
            .filter(|v| td.bags[1].vars.contains(v))
            .collect();
        assert_eq!(shared.len(), 2);
    }

    #[test]
    fn trees_have_width_one() {
        let mut b = PatternBuilder::new(Vocab::shared());
        let hub = b.node("hub", "t");
        for i in 0..5 {
            let v = b.node(&format!("v{i}"), "t");
            b.edge(hub, v, "l");
        }
        let star = b.build();
        let td = tree_decomposition(&star);
        verify(&td, &star);
        assert_eq!(td.width(), 1);

        let mut b = PatternBuilder::new(Vocab::shared());
        let vs: Vec<VarId> = (0..6).map(|i| b.node(&format!("p{i}"), "t")).collect();
        for w in vs.windows(2) {
            b.edge(w[0], w[1], "e");
        }
        let path = b.build();
        let td = tree_decomposition(&path);
        verify(&td, &path);
        assert_eq!(td.width(), 1);
    }

    #[test]
    fn single_node_and_empty() {
        let mut b = PatternBuilder::new(Vocab::shared());
        b.node("x", "t");
        let q = b.build();
        let td = tree_decomposition(&q);
        verify(&td, &q);
        assert_eq!(td.width(), 0);
        assert_eq!(td.bag_count(), 1);

        let empty = PatternBuilder::new(Vocab::shared()).build();
        assert_eq!(tree_decomposition(&empty).bag_count(), 0);
        assert_eq!(tree_decomposition(&empty).width(), 0);
    }

    #[test]
    fn k4_is_width_three() {
        let mut b = PatternBuilder::new(Vocab::shared());
        let vs: Vec<VarId> = (0..4).map(|i| b.node(&format!("v{i}"), "t")).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.edge(vs[i], vs[j], "e");
            }
        }
        let q = b.build();
        let td = tree_decomposition(&q);
        verify(&td, &q);
        assert_eq!(td.width(), 3);
        assert_eq!(td.bag_count(), 1);
    }

    /// The 3×3 grid graph has treewidth 3 — the exact search must not
    /// settle for min-fill's answer if a better order exists (both
    /// give 3 here, but the exact bound is what the assertion pins).
    #[test]
    fn grid_3x3_width_three() {
        let mut b = PatternBuilder::new(Vocab::shared());
        let vs: Vec<VarId> = (0..9).map(|i| b.node(&format!("g{i}"), "t")).collect();
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    b.edge(vs[3 * r + c], vs[3 * r + c + 1], "e");
                }
                if r + 1 < 3 {
                    b.edge(vs[3 * r + c], vs[3 * (r + 1) + c], "e");
                }
            }
        }
        let q = b.build();
        // 9 vars > EXACT_MAX_VARS → min-fill path; still valid and
        // width 3 on a grid this small.
        let td = tree_decomposition(&q);
        verify(&td, &q);
        assert_eq!(td.width(), 3);
    }

    #[test]
    fn diamond_width_two() {
        // 4-cycle plus one chord: chordal, width 2.
        let mut b = PatternBuilder::new(Vocab::shared());
        let vs: Vec<VarId> = (0..4).map(|i| b.node(&format!("v{i}"), "t")).collect();
        for i in 0..4 {
            b.edge(vs[i], vs[(i + 1) % 4], "e");
        }
        b.edge(vs[0], vs[2], "c");
        let q = b.build();
        let td = tree_decomposition(&q);
        verify(&td, &q);
        assert_eq!(td.width(), 2);
        assert_eq!(td.bag_count(), 2);
    }

    #[test]
    fn disconnected_pattern_yields_forest() {
        let mut b = PatternBuilder::new(Vocab::shared());
        let x = b.node("x", "t");
        let y = b.node("y", "t");
        b.edge(x, y, "e");
        let z = b.node("z", "t");
        let w = b.node("w", "t");
        b.edge(z, w, "e");
        let q = b.build();
        let td = tree_decomposition(&q);
        verify(&td, &q);
        assert_eq!(td.width(), 1);
        let roots = td.bags.iter().filter(|b| b.parent.is_none()).count();
        assert_eq!(roots, 2);
    }

    #[test]
    fn decomposition_is_deterministic() {
        let q = cycle(5);
        let a = tree_decomposition(&q);
        let b = tree_decomposition(&q);
        assert_eq!(a, b);
    }

    #[test]
    fn relabel_transports_bags() {
        let q = cycle(3);
        let td = tree_decomposition(&q);
        // Reverse the variable numbering.
        let mapped = td.relabel(|v| VarId(2 - v.0));
        assert_eq!(mapped.width(), 2);
        assert_eq!(mapped.bags[0].vars, vec![VarId(0), VarId(1), VarId(2)]);
    }

    #[test]
    fn self_loops_do_not_widen() {
        let mut b = PatternBuilder::new(Vocab::shared());
        let x = b.node("x", "t");
        let y = b.node("y", "t");
        b.edge(x, x, "s");
        b.edge(x, y, "e");
        let q = b.build();
        let td = tree_decomposition(&q);
        verify(&td, &q);
        assert_eq!(td.width(), 1);
    }
}
