//! # gfd-pattern — graph patterns `Q[x̄]`
//!
//! Implements the pattern language of §2 of *Functional Dependencies
//! for Graphs* (Fan, Wu & Xu, SIGMOD 2016):
//!
//! * a pattern is a directed graph whose nodes and edges carry either a
//!   concrete label or the wildcard `_`;
//! * `x̄` is a list of variables, one per pattern node (the bijection
//!   `µ` is the identity on indices here: variable `i` *is* node `i`);
//! * patterns may be disconnected (`Q1`, `Q4` in Fig. 2) — matches of
//!   different components may land far apart in the data graph.
//!
//! On top of the representation this crate provides the analyses the
//! GFD algorithms need:
//!
//! * connected components, eccentricities and **pivot selection** (the
//!   minimum-radius node per component, §5.2) — module [`analysis`];
//! * **pattern-to-pattern embeddings** (`Q'` embeddable in `Q` via an
//!   isomorphic mapping onto a subgraph, §4) — module [`embed`];
//! * canonical **signatures** for grouping isomorphic components
//!   across a rule set (the multi-query optimization of the appendix)
//!   — module [`signature`];
//! * complete **canonical forms** with explicit [`IsoWitness`]
//!   bijections — the exact-isomorphism layer the candidate-space
//!   registry keys on and transports along — module [`canon`];
//! * **tree decompositions** with exact width for the small components
//!   mined rules produce — the planner layer's structure analysis for
//!   worst-case-optimal multiway matching of cyclic patterns — module
//!   [`decomp`].

pub mod analysis;
pub mod canon;
pub mod decomp;
pub mod embed;
pub mod pattern;
pub mod signature;

pub use analysis::{ComponentInfo, PivotVector};
pub use canon::{canonical_form, iso_witness, CanonicalForm, IsoWitness};
pub use decomp::{tree_decomposition, Bag, TreeDecomposition};
pub use embed::{embeddings, embeddings_with, is_embeddable, isomorphic};
pub use pattern::{distinct_neighbors, PatLabel, Pattern, PatternBuilder, PatternEdge, VarId};
pub use signature::component_signature;
